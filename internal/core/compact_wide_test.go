package core

import (
	"math/rand"
	"testing"

	"obddopt/internal/truthtable"
)

// TestCompactIntoWideMatchesPacked is the differential property of the
// two compaction kernels: for the same source table, absorbed position
// and rule, the wide (64-bit dedup) kernel and the packed 32-bit kernel
// assign the same skip cells verbatim and the same fresh nodes up to the
// id0 offset, and report the same width. resetDedup selects the layout
// purely from id0+expect, so forcing id0 past the 16-bit ceiling runs
// the exact code path large instances take.
func TestCompactIntoWideMatchesPacked(t *testing.T) {
	const wideID0 = 1 << 17 // forces dd.Reset (wide) in resetDedup
	ws := acquireWorkspace()
	defer ws.release()
	rng := rand.New(rand.NewSource(211))
	for _, rule := range []Rule{OBDD, ZDD} {
		for trial := 0; trial < 12; trial++ {
			n := 3 + trial%4 // 3..6: halves of 4..32 hit both the 8-lane and tail loops
			var tt *truthtable.Table
			switch trial {
			case 0:
				// All-false: every chunk takes the word-parallel bulk skip.
				tt = truthtable.New(n)
			case 1:
				// Parity: no cell skips, every pair hits the dedup table.
				tt = truthtable.FromFunc(n, func(x []bool) bool {
					v := false
					for _, b := range x {
						v = v != b
					}
					return v
				})
			default:
				tt = truthtable.Random(n, rng)
			}
			src := baseContext(tt).table
			for pos := uint(0); pos < uint(n); pos++ {
				size := uint64(len(src)) / 2
				ref := make([]uint32, size)
				resetDedup(&ws.dd, size, 2)
				if !ws.dd.Compact32() {
					t.Fatal("reference resetDedup did not select the packed layout")
				}
				wRef := compactInto(ref, src, pos, rule, 2, &ws.dd)

				wide := make([]uint32, size)
				resetDedup(&ws.dd, size, wideID0)
				if ws.dd.Compact32() {
					t.Fatal("wide resetDedup selected the packed layout")
				}
				wWide := compactInto(wide, src, pos, rule, wideID0, &ws.dd)

				if wRef != wWide {
					t.Fatalf("rule=%v n=%d pos=%d: width %d (packed) != %d (wide)",
						rule, n, pos, wRef, wWide)
				}
				for i := range ref {
					want := ref[i]
					if want >= 2 { // fresh node: shifted by the id0 delta
						want = want - 2 + wideID0
					}
					if wide[i] != want {
						t.Fatalf("rule=%v n=%d pos=%d cell %d: wide %d, want %d (packed %d)",
							rule, n, pos, i, wide[i], want, ref[i])
					}
				}
			}
		}
	}
}

// TestMeterResetAndUnderflow covers the Meter reuse contract: Reset
// zeroes every counter, and free clamps at zero instead of wrapping.
func TestMeterResetAndUnderflow(t *testing.T) {
	m := &Meter{}
	m.addCells(7)
	m.alloc(16)
	m.Reset()
	if *m != (Meter{}) {
		t.Fatalf("Reset left %+v", *m)
	}
	m.alloc(4)
	m.free(9) // more than live: clamps to zero
	if m.LiveCells != 0 {
		t.Fatalf("LiveCells = %d after over-free, want 0", m.LiveCells)
	}
}

// TestFSContextClone checks the deep-copy contract: the clone's table is
// independent storage with identical contents and metadata.
func TestFSContextClone(t *testing.T) {
	tt := truthtable.Random(4, rand.New(rand.NewSource(212)))
	c := baseContext(tt)
	cl := c.clone()
	if cl.n != c.n || cl.free != c.free || cl.cost != c.cost || cl.nTerm != c.nTerm {
		t.Fatalf("clone metadata %+v != original %+v", cl, c)
	}
	for i := range c.table {
		if cl.table[i] != c.table[i] {
			t.Fatalf("clone table differs at %d", i)
		}
	}
	cl.table[0] ^= 1
	if c.table[0] == cl.table[0] {
		t.Fatal("clone shares table storage with the original")
	}
}
