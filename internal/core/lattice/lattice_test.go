package lattice

import (
	"math/bits"
	"testing"

	"obddopt/internal/bitops"
)

// TestRankMatchesGosperOrder pins the property the DP relies on: Gosper
// enumeration of a layer visits masks exactly in rank order 0, 1, 2, …
func TestRankMatchesGosperOrder(t *testing.T) {
	for n := 0; n <= 12; n++ {
		r := New(n)
		for k := 0; k <= n; k++ {
			want := uint64(0)
			bitops.SubsetsOfSize(n, k, func(m bitops.Mask) {
				if got := r.Rank(m); got != want {
					t.Fatalf("n=%d k=%d mask=%#x: Rank = %d, want %d", n, k, uint64(m), got, want)
				}
				want++
			})
			if want != r.LayerSize(k) {
				t.Fatalf("n=%d k=%d: enumerated %d masks, LayerSize = %d", n, k, want, r.LayerSize(k))
			}
		}
	}
}

func TestUnrankInvertsRank(t *testing.T) {
	r := New(10)
	for k := 0; k <= 10; k++ {
		for rank := uint64(0); rank < r.LayerSize(k); rank++ {
			m := r.Unrank(k, rank)
			if m.Count() != k {
				t.Fatalf("Unrank(%d, %d) = %#x has popcount %d", k, rank, uint64(m), m.Count())
			}
			if got := r.Rank(m); got != rank {
				t.Fatalf("Rank(Unrank(%d, %d)) = %d", k, rank, got)
			}
		}
	}
}

func TestLayerSizesSumToPowerOfTwo(t *testing.T) {
	for n := 0; n <= 20; n++ {
		r := New(n)
		var sum uint64
		for k := 0; k <= n; k++ {
			sum += r.LayerSize(k)
		}
		if sum != 1<<uint(n) {
			t.Fatalf("n=%d: layer sizes sum to %d, want %d", n, sum, uint64(1)<<uint(n))
		}
	}
}

func TestOutOfRange(t *testing.T) {
	r := New(6)
	if r.LayerSize(-1) != 0 || r.LayerSize(7) != 0 {
		t.Fatalf("out-of-range LayerSize should be 0")
	}
	if r.N() != 6 {
		t.Fatalf("N = %d, want 6", r.N())
	}
	mustPanic(t, func() { r.Unrank(3, r.LayerSize(3)) })
	mustPanic(t, func() { New(-1) })
	mustPanic(t, func() { New(MaxVars + 1) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	f()
}

// TestPredRanks cross-checks the O(k) prefix/suffix predecessor ranks
// against direct ranking of each one-bit removal, exhaustively for small
// universes.
func TestPredRanks(t *testing.T) {
	for n := 1; n <= 12; n++ {
		r := New(n)
		buf := make([]uint64, n)
		for mask := bitops.Mask(1); mask < bitops.Mask(1)<<uint(n); mask++ {
			got := r.PredRanks(mask, buf)
			i := 0
			for t2 := uint64(mask); t2 != 0; t2 &= t2 - 1 {
				p := bits.TrailingZeros64(t2)
				want := r.Rank(mask.Without(p))
				if got[i] != want {
					t.Fatalf("n=%d mask=%#x pred %d: rank %d, want %d", n, uint64(mask), p, got[i], want)
				}
				i++
			}
		}
	}
}

// TestMaxPredRankWatermark verifies the two facts the scheduler's shard
// watermark rests on, exhaustively: (1) MaxPredRank is the maximum over
// all one-bit-removal predecessor ranks, and (2) it is nondecreasing in
// the destination's rank within a layer — so the maximum over a rank
// range is attained at the range's last mask.
func TestMaxPredRankWatermark(t *testing.T) {
	for n := 1; n <= 14; n++ {
		r := New(n)
		buf := make([]uint64, n)
		for k := 1; k <= n; k++ {
			prev := uint64(0)
			mask := bitops.FirstSubsetOfSize(k)
			for rank := uint64(0); rank < r.LayerSize(k); rank++ {
				wm := r.MaxPredRank(mask)
				for _, pr := range r.PredRanks(mask, buf) {
					if pr > wm {
						t.Fatalf("n=%d mask=%#x: pred rank %d exceeds MaxPredRank %d", n, uint64(mask), pr, wm)
					}
				}
				if wm < prev {
					t.Fatalf("n=%d k=%d rank=%d: MaxPredRank %d decreased below %d", n, k, rank, wm, prev)
				}
				prev = wm
				mask, _ = bitops.NextSubsetSameSize(mask, n)
			}
		}
	}
}
