package lattice

import (
	"testing"

	"obddopt/internal/bitops"
)

// TestRankMatchesGosperOrder pins the property the DP relies on: Gosper
// enumeration of a layer visits masks exactly in rank order 0, 1, 2, …
func TestRankMatchesGosperOrder(t *testing.T) {
	for n := 0; n <= 12; n++ {
		r := New(n)
		for k := 0; k <= n; k++ {
			want := uint64(0)
			bitops.SubsetsOfSize(n, k, func(m bitops.Mask) {
				if got := r.Rank(m); got != want {
					t.Fatalf("n=%d k=%d mask=%#x: Rank = %d, want %d", n, k, uint64(m), got, want)
				}
				want++
			})
			if want != r.LayerSize(k) {
				t.Fatalf("n=%d k=%d: enumerated %d masks, LayerSize = %d", n, k, want, r.LayerSize(k))
			}
		}
	}
}

func TestUnrankInvertsRank(t *testing.T) {
	r := New(10)
	for k := 0; k <= 10; k++ {
		for rank := uint64(0); rank < r.LayerSize(k); rank++ {
			m := r.Unrank(k, rank)
			if m.Count() != k {
				t.Fatalf("Unrank(%d, %d) = %#x has popcount %d", k, rank, uint64(m), m.Count())
			}
			if got := r.Rank(m); got != rank {
				t.Fatalf("Rank(Unrank(%d, %d)) = %d", k, rank, got)
			}
		}
	}
}

func TestLayerSizesSumToPowerOfTwo(t *testing.T) {
	for n := 0; n <= 20; n++ {
		r := New(n)
		var sum uint64
		for k := 0; k <= n; k++ {
			sum += r.LayerSize(k)
		}
		if sum != 1<<uint(n) {
			t.Fatalf("n=%d: layer sizes sum to %d, want %d", n, sum, uint64(1)<<uint(n))
		}
	}
}

func TestOutOfRange(t *testing.T) {
	r := New(6)
	if r.LayerSize(-1) != 0 || r.LayerSize(7) != 0 {
		t.Fatalf("out-of-range LayerSize should be 0")
	}
	if r.N() != 6 {
		t.Fatalf("N = %d, want 6", r.N())
	}
	mustPanic(t, func() { r.Unrank(3, r.LayerSize(3)) })
	mustPanic(t, func() { New(-1) })
	mustPanic(t, func() { New(MaxVars + 1) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	f()
}
