// Package lattice provides dense combinatorial indexing of the subset
// lattice the Friedman–Supowit dynamic program walks: each popcount
// layer k of {0, …, n−1} is a contiguous array of C(n, k) slots, and a
// k-element subset mask maps to its slot by combinadic (colexicographic)
// rank. Because colex order over fixed-popcount masks coincides with
// numeric order, Gosper enumeration (bitops.NextSubsetSameSize) visits
// the slots of a layer exactly in rank order 0, 1, 2, … — the DP can
// walk a layer with a running mask and a running index and never hash.
//
// Ranking replaces the `map[bitops.Mask]` tables the DP historically
// kept per layer: flat slices indexed by rank are cache-dense, free of
// hashing, and make the layer's memory footprint exactly the C(n, k)
// cells the paper's TABLE accounting predicts.
package lattice

import (
	"fmt"
	"math/bits"
	"sync"

	"obddopt/internal/bitops"
)

// MaxVars bounds the ranker's universe. C(64, 32) overflows uint64, but
// every layer size reachable by the O*(3^n) dynamic program (n ≤ ~30)
// fits comfortably; 64 matches the bitops.Mask width.
const MaxVars = 64

// Ranker ranks and unranks fixed-popcount subsets of {0, …, n−1}. The
// zero value is unusable; construct with New. Rankers are immutable and
// safe for concurrent use.
type Ranker struct {
	n int
	// binom[p][j] = C(p, j) for 0 ≤ p ≤ n, 0 ≤ j ≤ n. Layer sizes and
	// ranks are sums of these; n ≤ 30 keeps every entry far below 2^64.
	binom [][]uint64
}

// New returns a Ranker over the universe {0, …, n−1}.
func New(n int) *Ranker {
	if n < 0 || n > MaxVars {
		panic(fmt.Sprintf("lattice: universe size %d out of range [0,%d]", n, MaxVars)) //lint:allow nopanic documented programmer-error precondition: the DP bounds n by the mask width
	}
	b := make([][]uint64, n+1)
	for p := 0; p <= n; p++ {
		b[p] = make([]uint64, n+1)
		b[p][0] = 1
		for j := 1; j <= p; j++ {
			b[p][j] = b[p-1][j-1] + b[p-1][j]
		}
	}
	return &Ranker{n: n, binom: b}
}

var (
	cacheMu sync.Mutex
	cache   [MaxVars + 1]*Ranker
)

// For returns a process-shared Ranker for universe size n. Rankers are
// immutable, so sharing is free; For exists because the dynamic program
// re-enters with the same n many times per divide-and-conquer run and
// rebuilding the binomial table each time would be pure waste.
func For(n int) *Ranker {
	if n < 0 || n > MaxVars {
		return New(n) // panics with the canonical message
	}
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if cache[n] == nil {
		cache[n] = New(n)
	}
	return cache[n]
}

// N returns the universe size.
func (r *Ranker) N() int { return r.n }

// LayerSize returns C(n, k), the number of slots of popcount layer k.
// Out-of-range k has zero slots.
func (r *Ranker) LayerSize(k int) uint64 {
	if k < 0 || k > r.n {
		return 0
	}
	return r.binom[r.n][k]
}

// Rank returns the combinadic rank of mask within its popcount layer:
// for set bits p_1 < p_2 < … < p_k, rank = Σ_j C(p_j, j). Masks of one
// layer are ranked 0 … C(n,k)−1 in increasing numeric order.
func (r *Ranker) Rank(mask bitops.Mask) uint64 {
	var rank uint64
	j := 1
	for t := uint64(mask); t != 0; t &= t - 1 {
		p := bits.TrailingZeros64(t)
		rank += r.binom[p][j]
		j++
	}
	return rank
}

// PredRanks writes the layer-(k−1) ranks of mask's one-bit-removal
// predecessors into out and returns them: out[i] is the rank of
// mask \ {p_i} where p_1 < p_2 < … < p_k are mask's set bits. out must
// have room for popcount(mask) entries.
//
// All k ranks come out of one O(k) pass. With members p_1 < … < p_k,
// removing p_i leaves members whose combinadic weights are C(p_t, t)
// for t < i (indices unchanged) and C(p_t, t−1) for t > i (each index
// shifts down by one), so
//
//	rank(mask \ {p_i}) = Σ_{t<i} C(p_t, t) + Σ_{t>i} C(p_t, t−1)
//
// — a prefix sum plus a suffix sum over the same member list.
func (r *Ranker) PredRanks(mask bitops.Mask, out []uint64) []uint64 {
	k := mask.Count()
	out = out[:k]
	// prefix: out[i] accumulates Σ_{t<i} C(p_t, t) in place.
	var prefix uint64
	j := 1
	for t := uint64(mask); t != 0; t &= t - 1 {
		p := bits.TrailingZeros64(t)
		out[j-1] = prefix
		prefix += r.binom[p][j]
		j++
	}
	// suffix: add Σ_{t>i} C(p_t, t−1) walking members high to low.
	var suffix uint64
	j = k
	for t := uint64(mask); t != 0; {
		p := 63 - bits.LeadingZeros64(t)
		t &^= 1 << uint(p)
		out[j-1] += suffix
		suffix += r.binom[p][j-1]
		j--
	}
	return out
}

// MaxPredRank returns the largest layer-(k−1) rank among the one-bit
// removal predecessors of the layer-k mask of the given rank — the rank
// of mask \ {min member}, by the exchange argument below. It is the
// watermark the work-stealing scheduler uses: a layer-k shard ending at
// this mask may start as soon as the layer-(k−1) prefix up to and
// including MaxPredRank is compacted.
//
// Two facts make the single evaluation sound:
//
//  1. For a fixed mask, rank(mask \ {p_i}) is maximized at i = 1 (the
//     smallest member): removing a smaller member leaves the larger
//     residual as a plain number, and within a layer colex rank is
//     monotone in numeric value, so the largest predecessor mask is the
//     highest-ranked one.
//  2. Monotonicity across a shard (proved in the tests exhaustively):
//     if S ≤ T numerically with equal popcount, then
//     S \ {min S} ≤ T \ {min T}, so the maximum over a rank range is
//     attained at the range's last mask.
func (r *Ranker) MaxPredRank(mask bitops.Mask) uint64 {
	return r.Rank(mask.Without(mask.Lowest()))
}

// Unrank is the inverse of Rank: it returns the k-element mask of the
// given rank within layer k. It panics when rank ≥ C(n, k).
func (r *Ranker) Unrank(k int, rank uint64) bitops.Mask {
	if k < 0 || k > r.n || rank >= r.LayerSize(k) {
		panic(fmt.Sprintf("lattice: unrank(%d, %d) out of range (layer size %d)", k, rank, r.LayerSize(k))) //lint:allow nopanic documented programmer-error precondition: rank must index into the layer
	}
	var mask bitops.Mask
	for j := k; j >= 1; j-- {
		// Largest p with C(p, j) ≤ rank; the j-th smallest member is p.
		p := j - 1
		for p+1 < MaxVars && p+1 <= r.n-1 && r.binom[p+1][j] <= rank {
			p++
		}
		mask = mask.With(p)
		rank -= r.binom[p][j]
	}
	return mask
}
