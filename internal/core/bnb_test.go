package core

import (
	"math/rand"
	"testing"

	"obddopt/internal/truthtable"
)

func TestBranchAndBoundAgreesWithFS(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	for trial := 0; trial < 30; trial++ {
		n := 2 + trial%6 // 2..7
		f := truthtable.Random(n, rng)
		fs := OptimalOrdering(f, nil)
		bb := BranchAndBound(f, nil)
		if fs.MinCost != bb.MinCost {
			t.Fatalf("n=%d: B&B %d != FS %d (f=%s)", n, bb.MinCost, fs.MinCost, f.Hex())
		}
		if got := SizeUnder(f, bb.Ordering, OBDD, nil); got != bb.Size {
			t.Fatalf("B&B ordering does not realize its size")
		}
	}
}

func TestBranchAndBoundZDD(t *testing.T) {
	rng := rand.New(rand.NewSource(112))
	for trial := 0; trial < 15; trial++ {
		n := 2 + trial%5
		f := truthtable.Random(n, rng)
		fs := OptimalOrdering(f, &SolveOptions{Rule: ZDD})
		bb := BranchAndBound(f, &BnBOptions{Rule: ZDD})
		if fs.MinCost != bb.MinCost {
			t.Fatalf("ZDD n=%d: B&B %d != FS %d (f=%s)", n, bb.MinCost, fs.MinCost, f.Hex())
		}
	}
}

func TestBranchAndBoundLowerBoundAblation(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	f := truthtable.Random(7, rng)
	withLB, withoutLB := &Meter{}, &Meter{}
	a := BranchAndBound(f, &BnBOptions{Meter: withLB})
	b := BranchAndBound(f, &BnBOptions{Meter: withoutLB, DisableLowerBound: true})
	if a.MinCost != b.MinCost {
		t.Fatalf("lower bound changed the optimum")
	}
	if withLB.CellOps > withoutLB.CellOps {
		t.Errorf("lower bound increased work: %d > %d", withLB.CellOps, withoutLB.CellOps)
	}
}

func TestBranchAndBoundSeededBound(t *testing.T) {
	rng := rand.New(rand.NewSource(114))
	f := truthtable.Random(6, rng)
	exact := OptimalOrdering(f, nil)
	// Seeding with the exact optimum + 1 must still find the optimum and
	// prune at least as much as unseeded.
	seeded, unseeded := &Meter{}, &Meter{}
	a := BranchAndBound(f, &BnBOptions{InitialBound: exact.MinCost + 1, Meter: seeded})
	b := BranchAndBound(f, &BnBOptions{Meter: unseeded})
	if a.MinCost != exact.MinCost || b.MinCost != exact.MinCost {
		t.Fatalf("seeded/unseeded optimum wrong: %d %d vs %d", a.MinCost, b.MinCost, exact.MinCost)
	}
	if seeded.CellOps > unseeded.CellOps {
		t.Errorf("seeding increased work")
	}
	// Seeding BELOW the optimum triggers the documented unseeded rerun.
	if exact.MinCost > 0 {
		c := BranchAndBound(f, &BnBOptions{InitialBound: exact.MinCost})
		if c.MinCost != exact.MinCost {
			t.Errorf("under-seeded run returned %d, want %d", c.MinCost, exact.MinCost)
		}
	}
}

func TestBranchAndBoundSpaceAdvantage(t *testing.T) {
	// The DFS keeps only one path of tables: peak cells must be far below
	// the dynamic program's layer peak (the trade E15 measures).
	rng := rand.New(rand.NewSource(115))
	f := truthtable.Random(9, rng)
	bbM, fsM := &Meter{}, &Meter{}
	BranchAndBound(f, &BnBOptions{Meter: bbM})
	OptimalOrdering(f, &SolveOptions{Meter: fsM})
	if bbM.PeakCells >= fsM.PeakCells {
		t.Errorf("B&B peak %d not below FS peak %d", bbM.PeakCells, fsM.PeakCells)
	}
	// Path tables: 2^n + 2^n + 2^{n-1} + … < 3·2^n.
	if bbM.PeakCells > 3*(1<<9) {
		t.Errorf("B&B peak %d exceeds the path bound", bbM.PeakCells)
	}
}

func TestBranchAndBoundTiny(t *testing.T) {
	for _, v := range []bool{false, true} {
		res := BranchAndBound(truthtable.Const(0, v), nil)
		if res.MinCost != 0 {
			t.Errorf("constant: MinCost %d", res.MinCost)
		}
	}
	res := BranchAndBound(truthtable.Var(1, 0), nil)
	if res.MinCost != 1 {
		t.Errorf("x0: MinCost %d", res.MinCost)
	}
}
