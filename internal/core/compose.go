package core

import (
	"math"

	"obddopt/internal/bitops"
	"obddopt/internal/obs"
	"obddopt/internal/quantum"
	"obddopt/internal/truthtable"
)

// This file implements the composition ladder of Section 4 (Theorems
// 11–13): the composable quantum algorithm OptOBDD_Γ whose inner
// extension subroutine Γ is either the classical FS* (the base of the
// ladder, Lemma 11) or, recursively, another OptOBDD_Γ (the induction
// step, Lemma 12). Each composition level re-runs the divide-and-conquer
// splitting inside the extension calls, which is what drives the exponent
// down the Table 2 column 2.83728 → 2.79364 → … → 2.77286.
//
// Classically simulated, every level of the ladder returns exact optima;
// what changes is the cost structure, metered by the quantum query
// counter. CompositionDepth 0 reproduces DivideAndConquer exactly.

// LadderOptions configures the composed algorithm.
type LadderOptions struct {
	// Rule selects the diagram variant.
	Rule Rule
	// Meter, if non-nil, accumulates compaction counts.
	Meter *Meter
	// Trace, if non-nil, receives split/merge and inner-DP layer events
	// (see DnCOptions.Trace).
	Trace obs.Tracer
	// Minimizer performs minimum finding (nil = exact simulator).
	Minimizer quantum.Minimizer
	// Alphas are the division fractions (nil = DefaultAlphas).
	Alphas []float64
	// Depth is the composition depth: 0 uses classical FS* as the
	// extension subroutine Γ (Lemma 11 / plain DivideAndConquer); d > 0
	// uses a depth-(d−1) ladder as Γ (Lemma 12). The papers iterate to
	// depth 9 for Theorem 13; exact results are identical at every depth.
	Depth int
}

// DivideAndConquerComposed runs the composition ladder at the configured
// depth and returns the exact optimum (with the exact minimizer).
func DivideAndConquerComposed(tt *truthtable.Table, opts *LadderOptions) *Result {
	rule := OBDD
	var m *Meter
	var tr obs.Tracer
	alphas := DefaultAlphas
	depth := 0
	if opts != nil {
		rule = opts.Rule
		m = opts.Meter
		tr = opts.Trace
		if opts.Alphas != nil {
			alphas = opts.Alphas
		}
		depth = opts.Depth
	}
	n := tt.NumVars()
	obs.Metrics.RunsStarted.Inc()
	var minz quantum.Minimizer
	if opts != nil && opts.Minimizer != nil {
		minz = opts.Minimizer
	} else {
		minz = &quantum.Exact{Eps: math.Pow(2, -float64(n)), Trace: tr}
	}

	base := baseContext(tt)
	m.alloc(base.cells())
	full := bitops.FullMask(n)
	l := &ladder{rule: rule, m: m, tr: tr, minz: minz, alphas: alphas}
	ctx, order, owned := l.extend(base, full, depth)
	minCost := ctx.cost
	if owned {
		m.free(ctx.cells())
	}
	m.free(base.cells())
	finishMetrics(m)
	return finishResult(tt, nil, truthtable.Ordering(order), minCost, rule, m)
}

type ladder struct {
	rule   Rule
	m      *Meter
	tr     obs.Tracer
	minz   quantum.Minimizer
	alphas []float64
}

// extend produces FS(⟨…, J⟩) from ctx (= FS(⟨…⟩)) by absorbing all of J:
// the role of Γ in the pseudocode. At depth 0 it is the classical FS*
// (one subset DP over J); at depth d it divides J at the α fractions,
// searches the division subsets with the minimizer, and extends
// recursively at depth d−1.
func (l *ladder) extend(ctx *fsContext, J bitops.Mask, depth int) (out *fsContext, order []int, owned bool) {
	nj := J.Count()
	if nj == 0 {
		return ctx, nil, false
	}
	sizes := normalizeSizes(nj, l.alphas)
	if depth <= 0 || len(sizes) == 0 {
		// Classical FS* extension. J is non-empty here, so the taken
		// context is always caller-owned.
		st := mustResult(runDP(ctx, J, nj, l.rule, l.m, l.tr, nil))
		order := st.Reconstruct(J)
		fin, owned := st.Take(J)
		st.Release()
		return fin, order, owned
	}

	// Preprocess: FS(⟨…, K⟩) for all K ⊆ J with |K| = sizes[0], computed
	// with the classical DP (line 3 of the pseudocode).
	pre := mustResult(runDP(ctx, J, sizes[0], l.rule, l.m, l.tr, nil))

	var solve func(L bitops.Mask, t int) (*fsContext, []int, bool)
	solve = func(L bitops.Mask, t int) (*fsContext, []int, bool) {
		if t == 0 {
			return pre.Context(L), pre.Reconstruct(L), false
		}
		s := sizes[t-1]
		if s >= L.Count() {
			return solve(L, t-1)
		}
		cands := subsetsWithin(L, s)
		if l.tr != nil {
			l.tr.Emit(obs.Event{Kind: obs.KindDnCSplit, Depth: t, Mask: uint64(L), Subsets: len(cands)})
		}
		eval := func(i uint64) uint64 {
			K := cands[i]
			ctxK, _, ownedK := solve(K, t-1)
			// The extension over L∖K is Γ: a depth−1 ladder.
			fin, _, ownedFin := l.extend(ctxK, L&^K, depth-1)
			cost := fin.cost
			if ownedFin {
				l.m.free(fin.cells())
			}
			if ownedK {
				l.m.free(ctxK.cells())
			}
			if l.m != nil {
				l.m.Evaluations++
			}
			obs.Metrics.Evaluations.Inc()
			return cost
		}
		best := l.minz.MinIndex(uint64(len(cands)), eval)
		K := cands[best]
		ctxK, orderK, ownedK := solve(K, t-1)
		fin, orderRest, ownedFin := l.extend(ctxK, L&^K, depth-1)
		if l.tr != nil {
			l.tr.Emit(obs.Event{Kind: obs.KindDnCMerge, Depth: t, Mask: uint64(K), Cost: fin.cost})
		}
		order := append(append([]int{}, orderK...), orderRest...)
		if !ownedFin {
			return ctxK, order, ownedK
		}
		if ownedK {
			l.m.free(ctxK.cells())
		}
		return fin, order, true
	}

	out, order, owned = solve(J, len(sizes))
	if !owned {
		// out is an entry of the precomputed layer; clone it so the
		// whole layer can be released uniformly.
		out = out.clone()
		l.m.alloc(out.cells()) // ownership transfers via the returned context; proven by meterbalance's carrier-return rule
		owned = true
	}
	pre.Release()
	return out, order, owned
}
