package core

import (
	stdctx "context"

	"obddopt/internal/bitops"
	"obddopt/internal/obs"
	"obddopt/internal/truthtable"
)

// BnBOptions configures the branch-and-bound exact search.
type BnBOptions struct {
	// Rule selects the diagram variant (OBDD or ZDD).
	Rule Rule
	// Meter, if non-nil, accumulates operation counts.
	Meter *Meter
	// Trace, if non-nil, receives node expand / prune / incumbent
	// events as the search runs.
	Trace obs.Tracer
	// InitialBound seeds the incumbent with a known upper bound on
	// MinCost (e.g. from a heuristic); 0 means start unbounded. A tight
	// seed can prune most of the search.
	InitialBound uint64
	// DisableLowerBound turns off the dependence-count lower bound,
	// leaving only memo/incumbent pruning (for ablation measurements).
	DisableLowerBound bool
	// Budget bounds the run's resources (live cells, node expansions);
	// the zero value is unlimited. Enforced only by BranchAndBoundCtx.
	Budget Budget
}

func (o *BnBOptions) rule() Rule {
	if o == nil {
		return OBDD
	}
	return o.Rule
}

func (o *BnBOptions) meter() *Meter {
	if o == nil {
		return nil
	}
	return o.Meter
}

func (o *BnBOptions) trace() obs.Tracer {
	if o == nil {
		return nil
	}
	return o.Trace
}

func (o *BnBOptions) budget() Budget {
	if o == nil {
		return Budget{}
	}
	return o.Budget
}

// BranchAndBound finds the exact optimal ordering by depth-first search
// over bottom-set prefixes with three prunings:
//
//   - dominance: a prefix reaching subset I with cost ≥ the best cost
//     already seen for I is abandoned (the memo realizes Lemma 3/4's
//     set-dependence, like the dynamic program, but lazily);
//   - incumbent: a prefix whose cost plus a lower bound on the remaining
//     levels reaches the best complete solution is abandoned;
//   - lower bound: every remaining level whose variable the current
//     residual function still depends on needs at least one node.
//
// Unlike the dynamic program, which stores whole table layers (Θ(3ⁿ)
// cells live at the peak, Remark 1), the search keeps only the tables
// along one DFS path — Θ(2ⁿ⁺¹) cells — trading recomputation for space.
// Exactness is unconditional; experiment E15 measures the trade.
func BranchAndBound(tt *truthtable.Table, opts *BnBOptions) *Result {
	return mustResult(BranchAndBoundCtx(nil, tt, opts))
}

// BranchAndBoundCtx is BranchAndBound under a context and resource
// budget: the checkpoint is polled once per node expansion, and an early
// stop unwinds the DFS releasing every path table. Unlike the dynamic
// program, the search carries a usable incumbent: when it is stopped
// after at least one complete ordering was evaluated, the returned
// Result holds the best incumbent (not proven optimal) alongside the
// ErrCanceled / ErrBudgetExceeded error.
func BranchAndBoundCtx(ctx stdctx.Context, tt *truthtable.Table, opts *BnBOptions) (*Result, error) {
	rule, tr := opts.rule(), opts.trace()
	m := meterFor(opts.meter(), opts.budget())
	lim := newLimiter(ctx, opts.budget(), m)
	obs.Metrics.RunsStarted.Inc()
	n := tt.NumVars()
	ws := acquireWorkspace()
	defer ws.release()
	base := baseContext(tt)
	m.alloc(base.cells())

	best := ^uint64(0)
	if opts != nil && opts.InitialBound > 0 {
		best = opts.InitialBound
	}
	found := false
	useLB := opts == nil || !opts.DisableLowerBound
	bestOrder := make([]int, n)
	order := make([]int, 0, n)
	memo := make(map[bitops.Mask]uint64)
	var searchOps, searchCompactions uint64

	var dfs func(c *fsContext, mask bitops.Mask) error
	dfs = func(c *fsContext, mask bitops.Mask) error {
		if seen, ok := memo[mask]; ok && c.cost >= seen {
			if tr != nil {
				tr.Emit(obs.Event{Kind: obs.KindBnBPruneMemo, Depth: len(order), Mask: uint64(mask), Cost: c.cost, Bound: seen})
			}
			return nil
		}
		memo[mask] = c.cost
		if len(order) == n {
			if m != nil {
				m.Evaluations++
			}
			obs.Metrics.Evaluations.Inc()
			if c.cost < best {
				best = c.cost
				copy(bestOrder, order)
				found = true
				if tr != nil {
					tr.Emit(obs.Event{Kind: obs.KindBnBBest, Cost: best})
				}
			}
			return nil
		}
		if c.cost >= best {
			if tr != nil {
				tr.Emit(obs.Event{Kind: obs.KindBnBPruneIncumbent, Depth: len(order), Mask: uint64(mask), Cost: c.cost, Bound: best})
			}
			return nil
		}
		if useLB {
			lb := c.cost + remainingLowerBound(c, rule)
			if lb >= best {
				if tr != nil {
					tr.Emit(obs.Event{Kind: obs.KindBnBPruneBound, Depth: len(order), Mask: uint64(mask), Cost: c.cost, Bound: lb})
				}
				return nil
			}
		}
		ops := c.cells() / 2
		for v := 0; v < n; v++ {
			if !c.free.Has(v) {
				continue
			}
			if err := lim.spend(1); err != nil {
				return err
			}
			next, _ := compact(c, v, rule, m, ws)
			searchOps += ops
			searchCompactions++
			if tr != nil {
				tr.Emit(obs.Event{Kind: obs.KindBnBExpand, Depth: len(order), Var: v, Cost: next.cost, CellOps: ops})
			}
			order = append(order, v)
			err := dfs(next, mask.With(v))
			order = order[:len(order)-1]
			m.free(next.cells())
			ws.recycle(next)
			if err != nil {
				return err
			}
		}
		return nil
	}
	err := dfs(base, 0)
	m.free(base.cells())
	obs.Metrics.CellOps.Add(searchOps)
	obs.Metrics.Compactions.Add(searchCompactions)

	if err != nil {
		// Stopped early: surface the best incumbent, if any, alongside
		// the error so callers can degrade gracefully.
		if found {
			return finishResult(tt, nil, truthtable.Ordering(append([]int(nil), bestOrder...)), best, rule, m), err
		}
		return nil, err
	}
	if !found {
		// The seeded bound was at or below the true optimum, so no
		// complete ordering was ever recorded; rerun unseeded.
		return BranchAndBoundCtx(ctx, tt, &BnBOptions{Rule: rule, Meter: opts.meter(), Trace: tr, Budget: opts.budget()})
	}
	finishMetrics(m)
	return finishResult(tt, nil, truthtable.Ordering(bestOrder), best, rule, m), nil
}

// remainingLowerBound counts the free variables whose level must hold at
// least one node under every completion, lower-bounding the remaining
// cost. For the OBDD rule a variable contributes iff the residual
// function depends on it (some table cell pair differs): dependence is
// semantic, so it survives absorbing the other variables in any order and
// forces at least one node on that variable's level. For the ZDD rule a
// dependent variable's level can still be empty (the skip condition is
// u1 == 0, not u0 == u1), so no per-variable contribution is claimed and
// only memo/incumbent pruning applies.
func remainingLowerBound(c *fsContext, rule Rule) uint64 {
	var lb uint64
	for _, v := range c.free.Members(make([]int, 0, c.free.Count())) {
		pos := bitops.RelativePosition(c.free, v)
		half := uint64(len(c.table)) / 2
		depends := false
		for idx := uint64(0); idx < half; idx++ {
			if c.table[bitops.SpliceIndex(idx, pos, 0)] != c.table[bitops.SpliceIndex(idx, pos, 1)] {
				depends = true
				break
			}
		}
		if !depends {
			continue
		}
		if rule == OBDD {
			// Dependence is semantic and preserved by absorbing other
			// variables, so a dependent variable's level is nonempty
			// under every completion.
			lb++
		}
		// For ZDD, dependence does not force a node on v's own level
		// (the skip condition is u1 == 0, not u0 == u1), so no safe
		// per-variable contribution is claimed.
	}
	return lb
}
