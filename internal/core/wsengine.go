package core

import (
	stdctx "context"
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"obddopt/internal/bitops"
	"obddopt/internal/core/lattice"
	"obddopt/internal/obs"
	"obddopt/internal/truthtable"
)

// This file is the work-stealing layer pipeline behind the "parallel"
// solver: the subset DP of fs.go re-scheduled so that no worker ever
// waits at a popcount-layer barrier.
//
// Each popcount layer k is the dense rank range [0, C(n,k)) of the
// lattice package; the scheduler partitions it into cache-line-aligned
// shards of whole ranks. A layer-k shard may start as soon as the
// contiguous compacted prefix of layer k−1 covers the shard's
// predecessor watermark — the largest layer-(k−1) rank reachable from
// any of the shard's destinations by one-bit removal, which
// lattice.MaxPredRank evaluates in O(k) and which is monotone in the
// destination rank, so one watermark per shard (its last destination)
// suffices and shards become eligible strictly in rank order. Workers
// therefore run ahead into layer k+1 while slower shards of layer k are
// still compacting; the full-layer barrier of the old coordinator
// design exists only implicitly, as the last watermark of each layer.
//
// Each destination subset S with |S| = k has k predecessors S\{p}. The
// serial DP compacts all k candidate tables and keeps the cheapest;
// here only ONE candidate (the smallest member, fixed independently of
// which candidate wins) is compacted into a table, and the remaining
// k−1 candidates are costed by a width-counting pass that never writes
// a table. This is sound because the kept table is used downstream only
// through value *equality* (the u0 == u1 / u1 == 0 skip tests and the
// dedup key), and any candidate's table induces the same partition of
// cells into equal-subfunction classes:
//
//   - table(S)[i] == table(S)[j]  iff  the subfunctions of f at dest
//     cells i and j (cofactors over the absorbed set S) are equal — by
//     induction over layers, since compactInto assigns IDs by (u0, u1)
//     pair equality and copies skip cells verbatim.
//   - the width of candidate p is the number of distinct (u0, u1) pairs
//     among the cells that actually create a node (u0 != u1 for OBDD,
//     u1 != 0 for ZDD, both read from the p-predecessor's table), and
//     pair equality coincides with dest-subfunction equality — so the
//     width equals the number of distinct *built-table labels* among
//     those cells, countable with a generation-stamped direct-index
//     array when every label fits in 16 bits.
//
// Costs, parents and tie-breaking replicate fs.go exactly (minimum
// cost, ties to the smallest member position), so results are
// bit-identical to the serial solver at every worker count and shard
// size. Cell-operation metering is also identical: every candidate —
// built or counted — is charged size cells, the unit of Theorem 5.
//
// Memory: the serial DP holds two layers (Remark 1); the pipeline holds
// at most three — layer k−1 is released by the unique completer of
// layer k, and spawning is gated so layer k+1 may only start once layer
// k−1 is complete. See DESIGN.md for the liveness argument.

// wsTask identifies one shard of one layer.
type wsTask struct {
	layer int
	shard int
}

// wsDeque is one worker's task deque: the owner pushes and pops at the
// back (LIFO — freshly unlocked shards are cache-hot), thieves take
// from the front (FIFO — the oldest task is the most likely to gate a
// frontier). Shards are coarse (thousands of cell operations each), so
// a mutex costs nothing measurable next to the work.
type wsDeque struct {
	mu sync.Mutex
	q  []wsTask
}

func (d *wsDeque) push(t wsTask) {
	d.mu.Lock()
	d.q = append(d.q, t)
	d.mu.Unlock()
}

func (d *wsDeque) pop() (wsTask, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.q) == 0 {
		return wsTask{}, false
	}
	t := d.q[len(d.q)-1]
	d.q = d.q[:len(d.q)-1]
	return t, true
}

func (d *wsDeque) steal() (wsTask, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.q) == 0 {
		return wsTask{}, false
	}
	t := d.q[0]
	d.q = d.q[1:]
	return t, true
}

// wsShardAlign is the shard granularity in ranks: 16 ranks keep each
// shard's slice of the per-rank cost (8 B) and base (4 B) arrays on
// whole cache lines, so adjacent shards running on different workers
// never write the same line.
const wsShardAlign = 16

// wsLayer is one popcount layer of the pipeline: the per-rank result
// arrays plus the shard-scheduling state.
type wsLayer struct {
	k         int
	count     uint64 // C(n, k) ranks
	cells     uint64 // table cells per rank: 2^(n-k)
	shardSize uint64 // ranks per shard (last shard may be short)
	nShards   int

	// watermark[s] is the number of layer-(k−1) ranks that must be
	// compacted before shard s may start: MaxPredRank(last dest of s)+1.
	// Monotone in s (lattice.MaxPredRank), so shards unlock in order.
	watermark []uint64

	// Per-rank results, written by exactly one shard each. tables[r] is
	// freed (set nil) by the completer of layer k+1. bases[r] is the
	// first fresh node ID for compactions reading tables[r] — the
	// built table's ID ceiling, which exceeds nTerm+costs[r] whenever
	// the built candidate lost the cost comparison.
	tables  [][]uint32
	costs   []uint64
	bases   []uint32
	parents []uint8

	spawned   atomic.Int64 // shards claimed so far (next to claim)
	frontier  atomic.Int64 // contiguous completed shard prefix
	done      []atomic.Bool
	remaining atomic.Int64 // shards not yet completed
	ops       atomic.Uint64
	startNS   atomic.Int64 // layer start (trace Elapsed), unix nanos
}

// covered returns the contiguous compacted rank prefix of the layer.
func (l *wsLayer) covered() uint64 {
	c := uint64(l.frontier.Load()) * l.shardSize
	if c > l.count {
		c = l.count
	}
	return c
}

func (l *wsLayer) complete() bool { return l.remaining.Load() == 0 }

// wsWorker is the goroutine-local state of one pipeline worker.
type wsWorker struct {
	ws    *workspace
	meter *Meter
	// seen/gen implement the width-counting distinct-label set: seen is
	// indexed directly by built-table label (< 2^16 by the counting
	// eligibility test) and a stamp is current iff it equals gen.
	seen     []uint32
	gen      uint32
	predBuf  []uint64
	executed uint64
	steals   uint64
}

func (wk *wsWorker) nextGen() uint32 {
	if wk.seen == nil {
		wk.seen = make([]uint32, 1<<16)
	}
	wk.gen++
	if wk.gen == 0 {
		clear(wk.seen)
		wk.gen = 1
	}
	return wk.gen
}

// wsEngine is one work-stealing DP run over the full variable set.
type wsEngine struct {
	n         int
	rule      Rule
	base      *fsContext
	baseCells uint64
	rk        *lattice.Ranker
	layers    []*wsLayer
	workers   []*wsWorker
	deques    []wsDeque
	pinned    bool
	tr        obs.Tracer

	ctx    stdctx.Context
	budget Budget
	checks bool // any of ctx / budget active

	// spawnLo is the lowest layer that may still have unclaimed shards;
	// claim scans upward from it through the 3-layer window.
	spawnLo atomic.Int64

	// live/peak gauge the engine-owned table cells (the caller-owned
	// base excluded); nodes counts DP transitions against MaxNodes.
	live  atomic.Int64
	peak  atomic.Int64
	nodes atomic.Uint64

	stop  atomic.Bool
	errMu sync.Mutex
	err   error
}

// fail records the first error and stops every worker.
func (e *wsEngine) fail(err error) {
	e.errMu.Lock()
	if e.err == nil {
		e.err = err
	}
	e.errMu.Unlock()
	e.stop.Store(true)
}

func (e *wsEngine) failErr() error {
	e.errMu.Lock()
	defer e.errMu.Unlock()
	return e.err
}

func (e *wsEngine) gaugeAlloc(cells uint64) {
	v := e.live.Add(int64(cells))
	for { //lint:allow ctxcheckpoint bounded CAS retry on the peak gauge: each failure means another worker raised the peak, which can happen at most once per concurrent allocation
		p := e.peak.Load()
		if v <= p || e.peak.CompareAndSwap(p, v) {
			return
		}
	}
}

func (e *wsEngine) gaugeFree(cells uint64) { e.live.Add(-int64(cells)) }

// checkpoint is the per-transition cooperative stop test: context
// cancellation and the node budget, mirroring limiter.spend(1) of the
// serial DP at the same granularity.
func (e *wsEngine) checkpoint() bool {
	if e.stop.Load() {
		return false
	}
	if !e.checks {
		return true
	}
	if e.budget.MaxNodes > 0 {
		if n := e.nodes.Add(1); n > e.budget.MaxNodes {
			e.fail(fmt.Errorf("%w: %d nodes > budget %d", ErrBudgetExceeded, n, e.budget.MaxNodes))
			return false
		}
	}
	if e.ctx != nil {
		select {
		case <-e.ctx.Done():
			e.fail(fmt.Errorf("%w: %v", ErrCanceled, e.ctx.Err()))
			return false
		default:
		}
	}
	return true
}

// checkCells enforces the live-cell budget at allocation granularity.
func (e *wsEngine) checkCells() bool {
	if e.budget.MaxCells == 0 {
		return true
	}
	if live := e.baseCells + uint64(e.live.Load()); live > e.budget.MaxCells {
		e.fail(fmt.Errorf("%w: live cells %d > budget %d", ErrBudgetExceeded, live, e.budget.MaxCells))
		return false
	}
	return true
}

// wsShardSize picks the shard granularity of a layer: with b explicit
// shard bits, 2^b ranks; otherwise about an eighth of the layer per
// worker, rounded up to the cache-line alignment so neighboring shards
// never share a line of the per-rank arrays.
func wsShardSize(count uint64, workers, shardBits int) uint64 {
	var size uint64
	if shardBits > 0 {
		size = uint64(1) << uint(shardBits)
	} else {
		size = count / uint64(workers*8)
		size = (size + wsShardAlign - 1) / wsShardAlign * wsShardAlign
		if size < wsShardAlign {
			size = wsShardAlign
		}
	}
	if size > count {
		size = count
	}
	if size == 0 {
		size = 1
	}
	return size
}

// newWSEngine lays out every layer's result arrays, shard table and
// watermarks. The layer-0 pseudo-layer wraps the caller-owned base
// context and is born complete.
func newWSEngine(ctx stdctx.Context, base *fsContext, rule Rule, workers int, shardBits int, pinned bool, budget Budget, tr obs.Tracer) *wsEngine {
	n := base.n
	rk := lattice.For(n)
	e := &wsEngine{
		n:         n,
		rule:      rule,
		base:      base,
		baseCells: base.cells(),
		rk:        rk,
		pinned:    pinned,
		tr:        tr,
		ctx:       ctx,
		budget:    budget,
		checks:    ctx != nil || !budget.zero(),
		layers:    make([]*wsLayer, n+1),
		deques:    make([]wsDeque, workers),
		workers:   make([]*wsWorker, workers),
	}
	for w := range e.workers {
		e.workers[w] = &wsWorker{
			ws:      acquireWorkspace(),
			meter:   &Meter{},
			predBuf: make([]uint64, n),
		}
	}

	l0 := &wsLayer{
		k:         0,
		count:     1,
		cells:     e.baseCells,
		shardSize: 1,
		nShards:   1,
		tables:    [][]uint32{base.table},
		costs:     []uint64{base.cost},
		bases:     []uint32{base.nextID()},
	}
	l0.frontier.Store(1)
	e.layers[0] = l0

	for k := 1; k <= n; k++ {
		count := rk.LayerSize(k)
		size := wsShardSize(count, workers, shardBits)
		nShards := int((count + size - 1) / size)
		l := &wsLayer{
			k:         k,
			count:     count,
			cells:     e.baseCells >> uint(k),
			shardSize: size,
			nShards:   nShards,
			watermark: make([]uint64, nShards),
			tables:    make([][]uint32, count),
			costs:     make([]uint64, count),
			bases:     make([]uint32, count),
			parents:   make([]uint8, count),
			done:      make([]atomic.Bool, nShards),
		}
		l.remaining.Store(int64(nShards))
		for s := 0; s < nShards; s++ {
			last := (uint64(s)+1)*size - 1
			if last >= count {
				last = count - 1
			}
			l.watermark[s] = rk.MaxPredRank(rk.Unrank(k, last)) + 1
		}
		e.layers[k] = l
	}
	e.spawnLo.Store(1)
	return e
}

// claim scans the spawn window for eligible shards and pushes up to
// wsClaimBatch of them onto worker w's deque. A layer-j shard is
// eligible when (a) layer j−2 is complete — the three-layer liveness
// window — and (b) the compacted prefix of layer j−1 covers the shard's
// predecessor watermark. Watermarks are monotone within a layer, so
// claiming through the spawned counter in rank order never skips an
// eligible shard.
const wsClaimBatch = 2

func (e *wsEngine) claim(w int) bool {
	claimed := 0
	for j := int(e.spawnLo.Load()); j <= e.n && claimed < wsClaimBatch; j++ {
		l := e.layers[j]
		if lo := int64(j); l.spawned.Load() >= int64(l.nShards) {
			// Fully claimed layers at the window floor advance it.
			e.spawnLo.CompareAndSwap(lo, lo+1)
			continue
		}
		if j >= 2 && !e.layers[j-2].complete() {
			break // window closed; higher layers are closed a fortiori
		}
		prev := e.layers[j-1]
		for claimed < wsClaimBatch {
			s := l.spawned.Load()
			if s >= int64(l.nShards) || prev.covered() < l.watermark[s] {
				break
			}
			if !l.spawned.CompareAndSwap(s, s+1) {
				continue
			}
			if s == 0 && e.tr != nil {
				l.startNS.Store(time.Now().UnixNano())
				e.tr.Emit(obs.Event{Kind: obs.KindLayerStart, K: j, Subsets: int(prev.count)})
			}
			e.deques[w].push(wsTask{layer: j, shard: int(s)})
			claimed++
		}
	}
	return claimed > 0
}

// trySteal takes the oldest task from another worker's deque.
func (e *wsEngine) trySteal(w int) (wsTask, bool) {
	for i := 1; i < len(e.deques); i++ {
		victim := (w + i) % len(e.deques)
		if t, ok := e.deques[victim].steal(); ok {
			e.workers[w].steals++
			return t, true
		}
	}
	return wsTask{}, false
}

// finished reports pipeline completion: the last layer has no shards
// outstanding.
func (e *wsEngine) finished() bool { return e.layers[e.n].complete() }

// run is one worker's scheduling loop: own deque first (LIFO), then
// claiming newly eligible shards, then stealing (unless pinned), then
// an idle backoff.
func (e *wsEngine) run(w int) {
	idle := 0
	for { //lint:allow ctxcheckpoint the scheduling loop's first action every iteration is the stop-flag test, and runShard polls the engine checkpoint (ctx + budget) once per DP transition
		if e.stop.Load() || e.finished() {
			return
		}
		if t, ok := e.deques[w].pop(); ok {
			e.runShard(w, t)
			idle = 0
			continue
		}
		if e.claim(w) {
			continue
		}
		if !e.pinned {
			if t, ok := e.trySteal(w); ok {
				e.runShard(w, t)
				idle = 0
				continue
			}
		}
		idle++
		if idle < 64 {
			runtime.Gosched()
		} else {
			time.Sleep(time.Duration(idle) * time.Microsecond)
			if idle > 256 {
				idle = 256
			}
		}
	}
}

// runShard compacts every destination of one shard: for each dest, one
// real compaction from the smallest-member predecessor plus a width-
// counting pass per remaining predecessor (or, above the 16-bit label
// ceiling, a full compaction per predecessor, serial-style).
func (e *wsEngine) runShard(w int, t wsTask) {
	wk := e.workers[w]
	l := e.layers[t.layer]
	prev := e.layers[t.layer-1]
	j := t.layer
	size := l.cells
	lo := uint64(t.shard) * l.shardSize
	hi := lo + l.shardSize
	if hi > l.count {
		hi = l.count
	}
	rel := e.rk.Unrank(j, lo)
	preds := wk.predBuf[:j]
	var layerOps uint64
	aborted := false

	for r := lo; r < hi; r++ {
		e.rk.PredRanks(rel, preds)
		var (
			dst      []uint32
			best     uint64
			bestP    uint8
			idCap    uint32
			canCount bool
		)
		i := 0
		for rest := uint64(rel); rest != 0; rest &= rest - 1 {
			p := bits.TrailingZeros64(rest)
			if !e.checkpoint() {
				aborted = true
				break
			}
			pr := preds[i]
			prevTable := prev.tables[pr]
			prevCost := prev.costs[pr]
			// p is the (i+1)-th member of rel, so i smaller members of
			// rel remain absorbed in the predecessor and p sits at free
			// position p−i of the predecessor's table.
			pos := uint(p - i)
			switch {
			case dst == nil:
				id0 := prev.bases[pr]
				dst = wk.ws.ar.GetU32(size)
				e.gaugeAlloc(size)
				if !e.checkCells() {
					aborted = true
					break
				}
				resetDedup(&wk.ws.dd, size, id0)
				width := compactInto(dst, prevTable, pos, e.rule, id0, &wk.ws.dd)
				wk.meter.addCells(size)
				layerOps += size
				best = prevCost + width
				bestP = uint8(p)
				idCap = id0 + uint32(width)
				canCount = uint64(idCap) <= 1<<16
			case canCount:
				gen := wk.nextGen()
				width := countWidth(prevTable, pos, e.rule, dst, wk.seen, gen)
				wk.meter.addCells(size)
				layerOps += size
				if cand := prevCost + width; cand < best {
					best, bestP = cand, uint8(p)
				}
			default:
				// Wide mode (node IDs past 2^16): no direct-index label
				// set, so cost this candidate with a full compaction and
				// keep the cheaper table, exactly like the serial DP.
				id0 := prev.bases[pr]
				alt := wk.ws.ar.GetU32(size)
				e.gaugeAlloc(size)
				if !e.checkCells() {
					wk.ws.ar.PutU32(alt)
					e.gaugeFree(size)
					aborted = true
					break
				}
				resetDedup(&wk.ws.dd, size, id0)
				width := compactInto(alt, prevTable, pos, e.rule, id0, &wk.ws.dd)
				wk.meter.addCells(size)
				layerOps += size
				if cand := prevCost + width; cand < best {
					wk.ws.ar.PutU32(dst)
					e.gaugeFree(size)
					dst, best, bestP = alt, cand, uint8(p)
					idCap = id0 + uint32(width)
				} else {
					wk.ws.ar.PutU32(alt)
					e.gaugeFree(size)
				}
			}
			i++
		}
		if aborted {
			if dst != nil {
				wk.ws.ar.PutU32(dst)
				e.gaugeFree(size)
			}
			break
		}
		l.tables[r] = dst
		l.costs[r] = best
		l.bases[r] = idCap
		l.parents[r] = bestP
		if r+1 < hi {
			rel, _ = bitops.NextSubsetSameSize(rel, e.n)
		}
	}

	l.ops.Add(layerOps)
	wk.executed++
	if aborted {
		return // shard incomplete: frontier stalls, every worker drains
	}
	l.done[t.shard].Store(true)
	for { //lint:allow ctxcheckpoint bounded frontier advance: each CAS success moves the frontier forward over at most nShards completed shards
		f := l.frontier.Load()
		if f >= int64(l.nShards) || !l.done[f].Load() {
			break
		}
		l.frontier.CompareAndSwap(f, f+1)
	}
	if l.remaining.Add(-1) == 0 {
		e.completeLayer(w, j)
	}
}

// completeLayer runs once per layer, on the worker that finished its
// last shard: it retires the now-unreadable previous layer (opening the
// liveness window for layer j+2) and emits the layer-granular
// observability the serial DP emits from its loop.
func (e *wsEngine) completeLayer(w int, j int) {
	l := e.layers[j]
	if j > 1 {
		prev := e.layers[j-1]
		for r, tbl := range prev.tables {
			if tbl != nil {
				// Blocks migrate to the completer's arena; arenas are
				// origin-agnostic by contract (see internal/core/arena).
				e.workers[w].ws.ar.PutU32(tbl)
				prev.tables[r] = nil
			}
		}
		e.gaugeFree(prev.count * prev.cells)
	}
	ops := l.ops.Load()
	obs.Metrics.CellOps.Add(ops)
	obs.Metrics.Compactions.Add(uint64(j) * l.count)
	if e.tr != nil {
		ev := obs.Event{
			Kind:    obs.KindLayerEnd,
			K:       j,
			Subsets: int(l.count),
			CellOps: ops,
			Elapsed: time.Duration(time.Now().UnixNano() - l.startNS.Load()),
		}
		ev.LiveCells = e.baseCells + uint64(e.live.Load())
		ev.PeakCells = e.baseCells + uint64(e.peak.Load())
		e.tr.Emit(ev)
	}
}

// countWidth returns the width of one DP candidate without building its
// table: the number of distinct labels among the cells of the (already
// built) destination table whose predecessor child pair creates a node
// under the rule. src is the candidate predecessor's table, pos the
// absorbed variable's free position in it, labels the built destination
// table, and seen/gen the caller's generation-stamped scratch (labels
// are < len(seen) by the caller's eligibility test). Chunks whose eight
// lanes all skip are skipped wholesale, mirroring compactInto's
// word-parallel fast path.
func countWidth(src []uint32, pos uint, rule Rule, labels []uint32, seen []uint32, gen uint32) (width uint64) {
	half := uint64(1) << pos
	stride := half * 2
	di := uint64(0)
	switch rule {
	case OBDD:
		for base := uint64(0); base < uint64(len(src)); base += stride {
			u0s := src[base : base+half : base+half]
			u1s := src[base+half : base+stride : base+stride]
			j := uint64(0)
			for ; j+8 <= half; j += 8 {
				if (u0s[j]^u1s[j])|(u0s[j+1]^u1s[j+1])|
					(u0s[j+2]^u1s[j+2])|(u0s[j+3]^u1s[j+3])|
					(u0s[j+4]^u1s[j+4])|(u0s[j+5]^u1s[j+5])|
					(u0s[j+6]^u1s[j+6])|(u0s[j+7]^u1s[j+7]) == 0 {
					di += 8
					continue
				}
				for l := j; l < j+8; l++ {
					if u0s[l] != u1s[l] {
						if lb := labels[di]; seen[lb] != gen {
							seen[lb] = gen
							width++
						}
					}
					di++
				}
			}
			for ; j < half; j++ {
				if u0s[j] != u1s[j] {
					if lb := labels[di]; seen[lb] != gen {
						seen[lb] = gen
						width++
					}
				}
				di++
			}
		}
	case ZDD:
		for base := uint64(0); base < uint64(len(src)); base += stride {
			u1s := src[base+half : base+stride : base+stride]
			j := uint64(0)
			for ; j+8 <= half; j += 8 {
				if u1s[j]|u1s[j+1]|u1s[j+2]|u1s[j+3]|
					u1s[j+4]|u1s[j+5]|u1s[j+6]|u1s[j+7] == 0 {
					di += 8
					continue
				}
				for l := j; l < j+8; l++ {
					if u1s[l] != 0 {
						if lb := labels[di]; seen[lb] != gen {
							seen[lb] = gen
							width++
						}
					}
					di++
				}
			}
			for ; j < half; j++ {
				if u1s[j] != 0 {
					if lb := labels[di]; seen[lb] != gen {
						seen[lb] = gen
						width++
					}
				}
				di++
			}
		}
	default:
		panic("core: unknown rule") //lint:allow nopanic internal invariant: Rule enum is exhaustive; a new rule must extend this switch
	}
	return width
}

// releaseAll frees every engine-owned table still live (abort path, or
// the normal path after the final table is consumed) and returns the
// workers' workspaces to the pool.
func (e *wsEngine) releaseAll() {
	ar := e.workers[0].ws.ar
	for j := 1; j <= e.n; j++ {
		l := e.layers[j]
		for r, tbl := range l.tables {
			if tbl != nil {
				ar.PutU32(tbl)
				l.tables[r] = nil
				e.gaugeFree(l.cells)
			}
		}
	}
	for _, wk := range e.workers {
		wk.ws.release()
		wk.ws = nil
	}
}

// OptimalOrderingParallel runs the Friedman–Supowit dynamic program on
// the work-stealing layer pipeline above: popcount layers are sharded
// over opts.Workers goroutines (0 selects GOMAXPROCS) with deque-based
// work stealing, and workers flow into the next layer as soon as its
// predecessor watermark is covered instead of waiting at a layer
// barrier. Results — cost, ordering, tie-breaking, profile — are
// bit-identical to OptimalOrderingCtx at every worker count and shard
// size; CellOps/Compactions metering is identical too, while
// LiveCells/PeakCells reflect the pipeline's three-layer window
// (against the serial rolling two, see DESIGN.md).
//
// Cancellation and budget exhaustion are polled per DP transition; on
// an early stop every worker drains, every engine-owned table is
// released — an attached Meter ends with the caller-visible LiveCells
// it started with — and ErrCanceled / ErrBudgetExceeded is returned
// with a nil Result (the DP holds no incumbent before it completes).
//
// opts.ShardBits overrides the shard granularity (2^b ranks per shard)
// for scheduling experiments; opts.Pinned disables stealing so each
// worker runs only shards it claimed itself.
func OptimalOrderingParallel(ctx stdctx.Context, tt *truthtable.Table, opts *SolveOptions) (*Result, error) {
	rule, tr, budget := opts.rule(), opts.trace(), opts.budget()
	m := meterFor(opts.meter(), budget)
	workers := opts.workers()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := tt.NumVars()
	// Tiny inputs fall back to the serial DP (bit-identical by
	// construction). Larger ones run the pipeline even at one worker:
	// the width-counting kernel does real work only for one of each
	// destination's k candidates, which beats the serial all-build DP by
	// a wide margin regardless of parallelism.
	if n <= 2 {
		return OptimalOrderingCtx(ctx, tt, &SolveOptions{Rule: rule, Meter: m, Trace: tr, Budget: budget})
	}
	obs.Metrics.RunsStarted.Inc()
	obs.Metrics.WorkerSpawns.Add(uint64(workers))

	base := baseContext(tt)
	m.alloc(base.cells())
	e := newWSEngine(ctx, base, rule, workers, opts.shardBits(), opts.pinnedSchedule(), budget, tr)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			e.run(w)
		}(w)
	}
	wg.Wait()

	// All workers have joined: merge the per-worker lane meters (the
	// portfolio idiom) and fold the engine's cell gauge into the
	// caller's meter at run granularity.
	var shards, steals uint64
	for _, wk := range e.workers {
		lm := wk.meter
		if m != nil {
			m.CellOps += lm.CellOps
			m.Compactions += lm.Compactions
			m.Evaluations += lm.Evaluations
		}
		shards += wk.executed
		steals += wk.steals
		obs.Hist(obs.HistNameShardOccupancy).Record(wk.executed)
	}
	obs.Metrics.ShardsExecuted.Add(shards)
	obs.Metrics.ShardSteals.Add(steals)
	obs.Hist(obs.HistNameRunSteals).Record(steals)
	peak := uint64(e.peak.Load())
	if err := e.failErr(); err != nil {
		e.releaseAll()
		m.alloc(peak)
		m.free(peak)
		m.free(base.cells())
		return nil, err
	}

	final := uint64(e.live.Load())
	m.alloc(peak)
	m.free(peak - final)

	minCost := e.layers[n].costs[0]
	order := make(truthtable.Ordering, n)
	rel := bitops.FullMask(n)
	for j := n; j >= 1; j-- {
		p := int(e.layers[j].parents[e.rk.Rank(rel)])
		order[j-1] = p
		rel = rel.Without(p)
	}
	e.releaseAll()
	m.free(final)
	m.free(base.cells())
	res := finishResult(tt, nil, order, minCost, rule, m)
	finishMetrics(m)
	return res, nil
}
