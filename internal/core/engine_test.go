package core

import (
	stdctx "context"
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"obddopt/internal/obs"
	"obddopt/internal/truthtable"
)

// cancelAfterLayers is a Tracer that cancels a context once it has seen
// the given number of completed DP layers, and counts every layer
// completed after the cancellation fired.
type cancelAfterLayers struct {
	cancel      stdctx.CancelFunc
	after       int
	seen        atomic.Int32
	afterCancel atomic.Int32
}

func (t *cancelAfterLayers) Emit(ev obs.Event) {
	if ev.Kind != obs.KindLayerEnd {
		return
	}
	n := t.seen.Add(1)
	if int(n) == t.after {
		t.cancel()
	} else if int(n) > t.after {
		t.afterCancel.Add(1)
	}
}

// TestCancelStopsWithinOneLayer verifies the tentpole promptness
// contract: a cancellation that fires at a layer boundary stops the
// dynamic program before it completes another full layer, releases every
// table it owns (the meter returns to zero live cells), and surfaces
// ErrCanceled.
func TestCancelStopsWithinOneLayer(t *testing.T) {
	tt := truthtable.Random(10, rand.New(rand.NewSource(42)))
	for _, run := range []struct {
		name  string
		solve func(ctx stdctx.Context, m *Meter, tr obs.Tracer) (*Result, error)
	}{
		{"fs", func(ctx stdctx.Context, m *Meter, tr obs.Tracer) (*Result, error) {
			return OptimalOrderingCtx(ctx, tt, &SolveOptions{Meter: m, Trace: tr})
		}},
		{"parallel", func(ctx stdctx.Context, m *Meter, tr obs.Tracer) (*Result, error) {
			return OptimalOrderingParallel(ctx, tt, &SolveOptions{Meter: m, Trace: tr, Workers: 4})
		}},
	} {
		t.Run(run.name, func(t *testing.T) {
			ctx, cancel := stdctx.WithCancel(stdctx.Background())
			defer cancel()
			tr := &cancelAfterLayers{cancel: cancel, after: 2}
			m := &Meter{}
			res, err := run.solve(ctx, m, tr)
			if !errors.Is(err, ErrCanceled) {
				t.Fatalf("err = %v, want ErrCanceled", err)
			}
			if res != nil {
				t.Fatalf("res = %+v, want nil (the DP has no incumbent)", res)
			}
			if got := tr.afterCancel.Load(); got > 1 {
				t.Errorf("%d layers completed after cancellation, want ≤ 1", got)
			}
			if m.LiveCells != 0 {
				t.Errorf("LiveCells = %d after abort, want 0 (all tables released)", m.LiveCells)
			}
		})
	}
}

// TestPreCanceledContext verifies every registered solver notices a
// context that is already done without grinding through the search, and
// that solvers with incumbents still return none (nothing was explored).
func TestPreCanceledContext(t *testing.T) {
	tt := truthtable.Random(9, rand.New(rand.NewSource(7)))
	ctx, cancel := stdctx.WithCancel(stdctx.Background())
	cancel()
	for _, name := range SolverNames() {
		solver, ok := LookupSolver(name)
		if !ok {
			t.Fatalf("registered solver %q vanished", name)
		}
		start := time.Now()
		_, err := solver(ctx, tt, &SolveOptions{})
		if !errors.Is(err, ErrCanceled) {
			t.Errorf("%s: err = %v, want ErrCanceled", name, err)
		}
		if el := time.Since(start); el > 2*time.Second {
			t.Errorf("%s: took %v on a pre-canceled context", name, el)
		}
	}
}

// TestBudgetNodesBnBIncumbent verifies budget exhaustion surfaces
// ErrBudgetExceeded together with the best incumbent the search had, and
// that the meter balances.
func TestBudgetNodesBnBIncumbent(t *testing.T) {
	tt := truthtable.Random(8, rand.New(rand.NewSource(3)))
	m := &Meter{}
	res, err := BranchAndBoundCtx(nil, tt, &BnBOptions{Meter: m, Budget: Budget{MaxNodes: 60}})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if res == nil {
		t.Fatal("no incumbent returned; 60 expansions cover several complete orderings at n=8")
	}
	if len(res.Ordering) != 8 || !res.Ordering.Valid() {
		t.Fatalf("incumbent ordering %v is not a permutation", res.Ordering)
	}
	// The incumbent must be an actual achievable cost.
	if got := SizeUnder(tt, res.Ordering, OBDD, nil); got != res.Size {
		t.Errorf("incumbent size %d but ordering achieves %d", res.Size, got)
	}
	if m.LiveCells != 0 {
		t.Errorf("LiveCells = %d after abort, want 0", m.LiveCells)
	}
}

// TestBudgetCells verifies the space budget: a cap far below the DP's
// peak aborts the run with ErrBudgetExceeded and a balanced meter, even
// without a caller-supplied meter (the solver must meter internally).
func TestBudgetCells(t *testing.T) {
	tt := truthtable.Random(10, rand.New(rand.NewSource(5)))
	res, err := OptimalOrderingCtx(nil, tt, &SolveOptions{Budget: Budget{MaxCells: 4096}})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if res != nil {
		t.Fatalf("res = %+v, want nil", res)
	}
	m := &Meter{}
	if _, err := OptimalOrderingCtx(nil, tt, &SolveOptions{Meter: m, Budget: Budget{MaxCells: 4096}}); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("metered: err = %v, want ErrBudgetExceeded", err)
	}
	if m.LiveCells != 0 {
		t.Errorf("LiveCells = %d after abort, want 0", m.LiveCells)
	}
}

// TestCancelSharedAndDnC covers the remaining context-aware entry points'
// abort bookkeeping.
func TestCancelSharedAndDnC(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tts := []*truthtable.Table{truthtable.Random(8, rng), truthtable.Random(8, rng)}
	m := &Meter{}
	if _, err := OptimalOrderingSharedCtx(nil, tts, &SolveOptions{Meter: m, Budget: Budget{MaxNodes: 40}}); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("shared: err = %v, want ErrBudgetExceeded", err)
	}
	if m.LiveCells != 0 {
		t.Errorf("shared: LiveCells = %d after abort, want 0", m.LiveCells)
	}

	tt := truthtable.Random(10, rng)
	m2 := &Meter{}
	res, err := DivideAndConquerCtx(nil, tt, &DnCOptions{Meter: m2, Budget: Budget{MaxNodes: 200}})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("dnc: err = %v, want ErrBudgetExceeded", err)
	}
	if res != nil {
		t.Fatalf("dnc: res = %+v, want nil", res)
	}
	if m2.LiveCells != 0 {
		t.Errorf("dnc: LiveCells = %d after abort, want 0", m2.LiveCells)
	}
}

// TestCtxEntryPointsMatchLegacy pins the refactor: the Ctx variants with
// a nil context and zero budget produce exactly the legacy results.
func TestCtxEntryPointsMatchLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 5; i++ {
		tt := truthtable.Random(7, rng)
		want := OptimalOrdering(tt, nil)
		for _, name := range []string{"fs", "parallel", "bnb", "brute", "dnc"} {
			solver, _ := LookupSolver(name)
			got, err := solver(nil, tt, &SolveOptions{})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if got.MinCost != want.MinCost {
				t.Errorf("%s: MinCost = %d, want %d", name, got.MinCost, want.MinCost)
			}
		}
	}
}
