package core

import (
	"fmt"

	"obddopt/internal/bitops"
	"obddopt/internal/truthtable"
)

// BlockResult reports a constrained minimization over Π(⟨B₁, …, B_m⟩): the
// orderings whose bottom |B₁| levels read exactly the variables of B₁ (in
// some order), the next |B₂| levels those of B₂, and so on.
type BlockResult struct {
	// Blocks echoes the requested block partition, bottom-up.
	Blocks []bitops.Mask
	// MinCost is MINCOST_⟨B₁,…,B_m⟩: the minimum number of nonterminal
	// nodes in the levels covered by the blocks, over all π ∈ Π(⟨B…⟩).
	MinCost uint64
	// BlockCosts[i] is MINCOST_⟨B₁,…,B_m⟩(B_i), block i's contribution.
	BlockCosts []uint64
	// Ordering is an optimal ordering of the covered variables,
	// bottom-up. If the blocks cover all n variables this is a complete
	// variable ordering.
	Ordering truthtable.Ordering
}

// OptimalOrderingBlocks is the composable algorithm FS* of Lemma 8
// specialized to full-block absorption: it computes FS(⟨B₁, …, B_m⟩) by
// running the subset dynamic program inside each block in turn. Lemma 7
// guarantees that optimizing each block independently, bottom-up, yields
// the exact constrained optimum: the width of a level depends only on the
// set of variables below it (Lemma 3), so a block's contribution is
// unaffected by the internal order of earlier blocks and later blocks.
//
// Blocks are given bottom-up and must be disjoint; they need not cover all
// variables (uncovered variables conceptually sit above the last block and
// contribute no cost here).
func OptimalOrderingBlocks(tt *truthtable.Table, blocks []bitops.Mask, opts *SolveOptions) *BlockResult {
	rule, m := opts.rule(), opts.meter()
	n := tt.NumVars()
	var seen bitops.Mask
	for i, b := range blocks {
		if b == 0 {
			panic(fmt.Sprintf("core: block %d is empty", i)) //lint:allow nopanic documented programmer-error precondition on the block structure
		}
		if b&seen != 0 {
			panic(fmt.Sprintf("core: block %d overlaps earlier blocks", i)) //lint:allow nopanic documented programmer-error precondition on the block structure
		}
		if b&^bitops.FullMask(n) != 0 {
			panic(fmt.Sprintf("core: block %d references variables ≥ n", i)) //lint:allow nopanic documented programmer-error precondition on the block structure
		}
		seen |= b
	}

	base := baseContext(tt)
	m.alloc(base.cells())
	cur := base
	res := &BlockResult{Blocks: blocks}
	var order []int
	for _, b := range blocks {
		st := mustResult(runDP(cur, b, b.Count(), rule, m, opts.trace(), nil))
		blockOrder := st.Reconstruct(b)
		order = append(order, blockOrder...)
		// Blocks are non-empty, so the taken context is always owned; the
		// state retires with nothing left to release but its workspace.
		next, _ := st.Take(b)
		st.Release()
		prevCost := cur.cost
		if cur != base {
			m.free(cur.cells())
		}
		cur = next
		res.BlockCosts = append(res.BlockCosts, cur.cost-prevCost)
	}
	res.MinCost = cur.cost
	res.Ordering = truthtable.Ordering(order)
	if cur != base {
		m.free(cur.cells())
	}
	m.free(base.cells())
	return res
}

// extendAll runs FS* in its general form (Lemma 8): starting from a
// context, it produces the DP state holding FS(⟨…, K⟩) for all K ⊆ J with
// |K| = stop. It is the preprocessing and composition step of the
// divide-and-conquer algorithm. The caller retires the returned state
// with Release when done.
func extendAll(ctx *fsContext, J bitops.Mask, stop int, rule Rule, m *Meter) *dpState {
	return mustResult(runDP(ctx, J, stop, rule, m, nil, nil))
}
