package core

import (
	"math/rand"
	"testing"

	"obddopt/internal/truthtable"
)

// This file contains an independent reference implementation of
// decision-diagram construction — a memoized top-down recursion over truth
// tables — used to validate the table-compaction engine. It shares no code
// with the compaction path (it never splices indices; it materializes
// cofactor tables).

type refBuilder struct {
	rule Rule
	// memo maps (level, hex of subfunction) → node ID.
	memo  map[string]uint32
	next  uint32
	nodes int
}

// refSize returns the number of nonterminal nodes of the diagram of f
// under the bottom-up ordering ord, by explicit recursive construction.
func refSize(f *truthtable.Table, ord truthtable.Ordering, rule Rule) int {
	b := &refBuilder{rule: rule, memo: map[string]uint32{}, next: 2}
	b.build(f, ord)
	return b.nodes
}

// build returns the node ID representing f, whose remaining variables are
// ord (bottom-up; the variable read first is ord[len-1]).
func (b *refBuilder) build(f *truthtable.Table, ord truthtable.Ordering) uint32 {
	if len(ord) == 0 {
		if f.Bit(0) {
			return 1
		}
		return 0
	}
	key := itoa(len(ord)) + "|" + f.Hex()
	if id, ok := b.memo[key]; ok {
		return id
	}
	topPos := len(ord) - 1
	top := ord[topPos]
	// Cofactoring removes variable top; variables above it in f's index
	// space shift down, so the remaining ordering must be renumbered.
	rest := make(truthtable.Ordering, topPos)
	for i, v := range ord[:topPos] {
		if v > top {
			v--
		}
		rest[i] = v
	}
	f0, f1 := f.Cofactor(top, false), f.Cofactor(top, true)
	lo := b.build(f0, rest)
	hi := b.build(f1, rest)
	var id uint32
	skip := false
	switch b.rule {
	case OBDD:
		skip = lo == hi
	case ZDD:
		skip = hi == 0
	}
	if skip {
		id = lo
	} else {
		id = b.next
		b.next++
		b.nodes++
	}
	b.memo[key] = id
	return id
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func TestCompactionMatchesReferenceOBDD(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 60; trial++ {
		n := 1 + trial%6
		f := truthtable.Random(n, rng)
		ord := truthtable.RandomOrdering(n, rng)
		widths := Profile(f, ord, OBDD, nil)
		var sum uint64
		for _, w := range widths {
			sum += w
		}
		want := refSize(f, ord, OBDD)
		if int(sum) != want {
			t.Fatalf("n=%d f=%s ord=%v: compaction %d != reference %d",
				n, f.Hex(), ord, sum, want)
		}
	}
}

func TestCompactionMatchesReferenceZDD(t *testing.T) {
	rng := rand.New(rand.NewSource(4096))
	for trial := 0; trial < 60; trial++ {
		n := 1 + trial%6
		f := truthtable.Random(n, rng)
		ord := truthtable.RandomOrdering(n, rng)
		widths := Profile(f, ord, ZDD, nil)
		var sum uint64
		for _, w := range widths {
			sum += w
		}
		want := refSize(f, ord, ZDD)
		if int(sum) != want {
			t.Fatalf("n=%d f=%s ord=%v: ZDD compaction %d != reference %d",
				n, f.Hex(), ord, sum, want)
		}
	}
}

func TestZDDKnownValues(t *testing.T) {
	// ZDD of the characteristic function of {∅} (f = all variables false)
	// is the bare 1-terminal: zero nonterminal nodes, any n.
	for n := 1; n <= 4; n++ {
		f := truthtable.FromFunc(n, func(x []bool) bool {
			for _, v := range x {
				if v {
					return false
				}
			}
			return true
		})
		res := OptimalOrdering(f, &SolveOptions{Rule: ZDD})
		if res.MinCost != 0 {
			t.Errorf("ZDD({∅}) n=%d: MinCost = %d, want 0", n, res.MinCost)
		}
	}
	// f = x0 over one variable: one ZDD node. f = ¬x0: zero nodes (the
	// zero-suppressed skip applies at the root).
	if res := OptimalOrdering(truthtable.Var(1, 0), &SolveOptions{Rule: ZDD}); res.MinCost != 1 {
		t.Errorf("ZDD(x0): MinCost = %d, want 1", res.MinCost)
	}
	if res := OptimalOrdering(truthtable.Var(1, 0).Not(), &SolveOptions{Rule: ZDD}); res.MinCost != 0 {
		t.Errorf("ZDD(¬x0): MinCost = %d, want 0", res.MinCost)
	}
}

func TestZDDOptimalAgreesWithBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 25; trial++ {
		n := 2 + trial%4
		f := truthtable.Random(n, rng)
		fs := OptimalOrdering(f, &SolveOptions{Rule: ZDD})
		bf := BruteForce(f, &BruteForceOptions{Rule: ZDD})
		if fs.MinCost != bf.MinCost {
			t.Fatalf("ZDD n=%d: FS %d != BF %d (f=%s)", n, fs.MinCost, bf.MinCost, f.Hex())
		}
	}
}

func TestMTBDDWeightFunction(t *testing.T) {
	// The weight function w(x) = Σ x_i is totally symmetric; its minimum
	// MTBDD has k(k+1)/2 … rather: level i (from the top, i vars read) has
	// i+1 nodes; total nonterminals Σ_{i=0}^{n−1} (i+1) = n(n+1)/2.
	for n := 2; n <= 5; n++ {
		w := truthtable.MultiFromFunc(n, func(x []bool) int {
			c := 0
			for _, v := range x {
				if v {
					c++
				}
			}
			return c
		})
		res := OptimalOrderingMulti(w, nil)
		want := uint64(n * (n + 1) / 2)
		if res.MinCost != want {
			t.Errorf("weight n=%d: MinCost = %d, want %d", n, res.MinCost, want)
		}
		if res.Terminals != n+1 {
			t.Errorf("weight n=%d: Terminals = %d, want %d", n, res.Terminals, n+1)
		}
		if res.Size != want+uint64(n+1) {
			t.Errorf("weight n=%d: Size = %d", n, res.Size)
		}
	}
}

func TestMTBDDReducesToOBDDOnBoolean(t *testing.T) {
	// A {0,1}-valued MultiTable must give the same minimum as the Boolean
	// path (the MTBDD generalization is conservative).
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		n := 2 + trial%4
		f := truthtable.Random(n, rng)
		if c, _ := f.IsConst(); c {
			continue
		}
		bres := OptimalOrdering(f, nil)
		mres := OptimalOrderingMulti(truthtable.FromBool(f), nil)
		if bres.MinCost != mres.MinCost {
			t.Fatalf("n=%d: Boolean %d != MTBDD %d", n, bres.MinCost, mres.MinCost)
		}
	}
}

func TestMTBDDPanicsOnZDDRule(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("OptimalOrderingMulti with ZDD rule did not panic")
		}
	}()
	OptimalOrderingMulti(truthtable.NewMulti(2), &SolveOptions{Rule: ZDD})
}
