package core

import (
	"fmt"
	"strings"
)

// Rule selects the reduction rule applied during table compaction, i.e.
// which decision-diagram variant is being minimized.
type Rule int

const (
	// OBDD applies the standard reduction: a node whose 0- and 1-child
	// coincide is skipped (the function does not depend on the level's
	// variable).
	OBDD Rule = iota
	// ZDD applies the zero-suppressed rule: a node whose 1-child is the
	// false terminal is skipped. This is the two-line modification of
	// Remark 2 / Appendix D.
	ZDD
)

// String returns the conventional name of the rule.
func (r Rule) String() string {
	switch r {
	case OBDD:
		return "OBDD"
	case ZDD:
		return "ZDD"
	default:
		return fmt.Sprintf("Rule(%d)", int(r))
	}
}

// UnknownRuleError reports a rule name that names no known diagram
// variant. It matches both itself and ErrInvalidInput under errors.Is,
// so transport layers can classify it without a dedicated branch.
type UnknownRuleError struct {
	// Name is the rejected rule spelling, verbatim.
	Name string
}

func (e *UnknownRuleError) Error() string {
	return fmt.Sprintf("obddopt: unknown rule %q (want OBDD or ZDD)", e.Name)
}

// Is makes errors.Is(err, ErrInvalidInput) true for unknown-rule errors.
func (e *UnknownRuleError) Is(target error) bool { return target == ErrInvalidInput }

// ParseRule maps a rule name to the Rule value. Names are matched
// case-insensitively ("obdd", "OBDD", "zdd", …); anything else returns a
// *UnknownRuleError (which errors.Is-matches ErrInvalidInput).
func ParseRule(name string) (Rule, error) {
	switch strings.ToLower(name) {
	case "obdd":
		return OBDD, nil
	case "zdd":
		return ZDD, nil
	default:
		return OBDD, &UnknownRuleError{Name: name}
	}
}

// MarshalJSON renders the rule as its conventional name, so run reports
// read "OBDD"/"ZDD" instead of enum integers.
func (r Rule) MarshalJSON() ([]byte, error) {
	return []byte(`"` + r.String() + `"`), nil
}

// UnmarshalJSON accepts the conventional name in any case (or a bare
// integer, for compatibility with numerically encoded reports). Unknown
// spellings are rejected with a *UnknownRuleError rather than silently
// defaulting.
func (r *Rule) UnmarshalJSON(data []byte) error {
	s := string(data)
	switch s {
	case "0":
		*r = OBDD
		return nil
	case "1":
		*r = ZDD
		return nil
	}
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		rule, err := ParseRule(s[1 : len(s)-1])
		if err != nil {
			return err
		}
		*r = rule
		return nil
	}
	return &UnknownRuleError{Name: s}
}
