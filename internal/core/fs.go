package core

import (
	"context"
	"fmt"
	"time"

	"obddopt/internal/bitops"
	"obddopt/internal/obs"
	"obddopt/internal/truthtable"
)

// Options configures the exact-ordering algorithms.
type Options struct {
	// Rule selects the diagram variant to minimize (OBDD or ZDD). The
	// zero value minimizes OBDDs.
	Rule Rule
	// Meter, if non-nil, accumulates operation counts.
	Meter *Meter
	// Trace, if non-nil, receives typed events as the dynamic program
	// runs (layer start/end, per-compaction transitions). A nil tracer
	// costs one branch per layer; see internal/obs.
	Trace obs.Tracer
	// Budget bounds the run's resources (live cells, DP transitions);
	// the zero value is unlimited. Enforced only by the Ctx entry
	// points.
	Budget Budget
}

func (o *Options) rule() Rule {
	if o == nil {
		return OBDD
	}
	return o.Rule
}

func (o *Options) meter() *Meter {
	if o == nil {
		return nil
	}
	return o.Meter
}

func (o *Options) trace() obs.Tracer {
	if o == nil {
		return nil
	}
	return o.Trace
}

func (o *Options) budget() Budget {
	if o == nil {
		return Budget{}
	}
	return o.Budget
}

// Result reports an exact minimization outcome. The JSON tags define the
// run-report schema shared with the CLI `-json` modes (see internal/obs).
type Result struct {
	// N is the number of variables of the input function.
	N int `json:"n"`
	// Rule is the diagram variant that was minimized.
	Rule Rule `json:"rule"`
	// MinCost is MINCOST_[n]: the number of nonterminal nodes of the
	// minimum diagram.
	MinCost uint64 `json:"min_cost"`
	// Terminals is the number of terminal nodes of the diagram (the
	// number of distinct function values; 2 for a nonconstant Boolean f).
	Terminals int `json:"terminals"`
	// Size is the total diagram size MinCost + Terminals, the quantity
	// the papers call OBDD size (e.g. 2n+2 for the Fig. 1 function).
	Size uint64 `json:"size"`
	// Ordering is an optimal variable ordering in bottom-up convention
	// (Ordering[0] is read last). Ties are broken deterministically by
	// preferring the smallest variable index at each DP step.
	Ordering truthtable.Ordering `json:"ordering"`
	// Profile[i] is the width Cost_{Ordering[i]}(f, π) of level i+1 under
	// the optimal ordering; the widths sum to MinCost.
	Profile []uint64 `json:"profile"`
	// TerminalValues lists the function values of the terminals in
	// increasing order (0/1 for Boolean inputs).
	TerminalValues []int `json:"terminal_values"`
}

// dpState is the rolling-layer subset dynamic program shared by FS and FS*.
// It absorbs subsets of vars (a subset of ctx.free) on top of the fixed
// context ctx, layer by layer (Lemma 4 / Lemma 7).
type dpState struct {
	rule  Rule
	meter *Meter
	// bestLast[K] is the variable read at the top of block K in the
	// optimal ordering of K — the parent pointer for reconstruction.
	bestLast map[bitops.Mask]int
	// minCost[K] is the optimal context cost after absorbing K.
	minCost map[bitops.Mask]uint64
	// layer holds the contexts of the most recently completed layer.
	layer map[bitops.Mask]*fsContext
}

// runDP absorbs subsets of vars on top of ctx up to layer stop
// (0 ≤ stop ≤ |vars|), keeping for every subset the minimum-cost context.
// It returns the DP state whose layer field holds the contexts for all
// stop-element subsets K of vars, each being FS(⟨…, K⟩) with cost
// minCost[K]. The input ctx is not modified.
//
// lim, when non-nil, is polled before every transition; on cancellation
// or budget exhaustion every table the DP still owns (current layer and
// partial next layer, never the caller's base context) is released
// through the meter and the error is returned, so Meter.LiveCells drops
// back to exactly the caller-owned cells.
func runDP(ctx *fsContext, vars bitops.Mask, stop int, rule Rule, m *Meter, tr obs.Tracer, lim *limiter) (*dpState, error) {
	if vars&^ctx.free != 0 {
		panic("core: runDP vars not free in context") //lint:allow nopanic internal invariant: runDP callers pass masks drawn from ctx.free
	}
	nv := vars.Count()
	if stop < 0 || stop > nv {
		panic(fmt.Sprintf("core: runDP stop %d out of range [0,%d]", stop, nv)) //lint:allow nopanic internal invariant: runDP callers bound stop by the mask cardinality
	}
	st := &dpState{
		rule:     rule,
		meter:    m,
		bestLast: make(map[bitops.Mask]int),
		minCost:  make(map[bitops.Mask]uint64),
		layer:    map[bitops.Mask]*fsContext{0: ctx},
	}
	st.minCost[0] = ctx.cost
	members := vars.Members(make([]int, 0, nv))

	// abort releases every context the DP still owns when a checkpoint
	// fires mid-layer.
	abort := func(next map[bitops.Mask]*fsContext) {
		for _, c := range next {
			m.free(c.cells())
		}
		for mask, c := range st.layer {
			if mask != 0 || c != ctx {
				m.free(c.cells())
			}
		}
		st.layer = nil
	}

	for k := 1; k <= stop; k++ {
		var layerStart time.Time
		if tr != nil {
			layerStart = time.Now()
			tr.Emit(obs.Event{Kind: obs.KindLayerStart, K: k, Subsets: len(st.layer)})
		}
		var layerOps, transitions uint64
		next := make(map[bitops.Mask]*fsContext, len(st.layer)*nv/k)
		for prevMask, prevCtx := range st.layer {
			ops := prevCtx.cells() / 2
			for _, v := range members {
				if prevMask.Has(v) {
					continue
				}
				if err := lim.spend(1); err != nil {
					abort(next)
					return nil, err
				}
				cand, w := compact(prevCtx, v, rule, m)
				layerOps += ops
				transitions++
				if tr != nil {
					tr.Emit(obs.Event{Kind: obs.KindCompaction, K: k, Var: v, Cost: w, CellOps: ops})
				}
				key := prevMask.With(v)
				if cur, ok := next[key]; !ok || cand.cost < cur.cost ||
					(cand.cost == cur.cost && v < st.bestLast[key]) {
					if ok {
						m.free(cur.cells())
					}
					next[key] = cand
					st.bestLast[key] = v
					st.minCost[key] = cand.cost
				} else {
					m.free(cand.cells())
				}
			}
		}
		// Release the tables of the completed layer (Remark 1: only two
		// layers are live at a time). The base context (layer 0) belongs
		// to the caller and is not released.
		for mask, c := range st.layer {
			if mask != 0 || c != ctx {
				m.free(c.cells())
			}
			_ = mask
		}
		st.layer = next
		obs.Metrics.CellOps.Add(layerOps)
		obs.Metrics.Compactions.Add(transitions)
		if tr != nil {
			ev := obs.Event{
				Kind:    obs.KindLayerEnd,
				K:       k,
				Subsets: len(next),
				CellOps: layerOps,
				Elapsed: time.Since(layerStart),
			}
			if m != nil {
				ev.LiveCells, ev.PeakCells = m.LiveCells, m.PeakCells
			}
			tr.Emit(ev)
		}
	}
	return st, nil
}

// reconstruct returns the bottom-up order in which the DP absorbed the
// variables of mask, by walking the bestLast parent pointers.
func (st *dpState) reconstruct(mask bitops.Mask) []int {
	k := mask.Count()
	order := make([]int, k)
	for i := k - 1; i >= 0; i-- {
		v, ok := st.bestLast[mask]
		if !ok {
			panic(fmt.Sprintf("core: no parent pointer for subset %#x", uint64(mask))) //lint:allow nopanic internal invariant: the DP records a parent pointer for every kept subset
		}
		order[i] = v
		mask = mask.Without(v)
	}
	return order
}

// OptimalOrdering runs the Friedman–Supowit dynamic program (algorithm FS,
// Theorem 5) on the truth table of f and returns the exact minimum diagram
// size together with an optimal variable ordering. Time and space are
// O*(3^n) in the number of variables n.
func OptimalOrdering(tt *truthtable.Table, opts *Options) *Result {
	return mustResult(OptimalOrderingCtx(nil, tt, opts))
}

// OptimalOrderingCtx is OptimalOrdering under a context and resource
// budget (opts.Budget): the dynamic program polls a cooperative
// checkpoint before every table compaction and stops with ErrCanceled /
// ErrBudgetExceeded — releasing every live table, so an attached Meter
// ends with LiveCells == 0 — instead of running to completion. The
// dynamic program holds no usable incumbent before it finishes, so an
// early stop returns a nil Result.
func OptimalOrderingCtx(ctx context.Context, tt *truthtable.Table, opts *Options) (*Result, error) {
	rule := opts.rule()
	m := meterFor(opts.meter(), opts.budget())
	lim := newLimiter(ctx, opts.budget(), m)
	obs.Metrics.RunsStarted.Inc()
	base := baseContext(tt)
	m.alloc(base.cells())
	n := tt.NumVars()
	st, err := runDP(base, bitops.FullMask(n), n, rule, m, opts.trace(), lim)
	if err != nil {
		m.free(base.cells())
		return nil, err
	}

	full := bitops.FullMask(n)
	order := truthtable.Ordering(st.reconstruct(full))
	res := finishResult(tt, nil, order, st.minCost[full], rule, m)
	if fin := st.layer[full]; fin != nil {
		m.free(fin.cells())
	}
	m.free(base.cells())
	finishMetrics(m)
	return res, nil
}

// finishMetrics folds a completed run into the process-wide registry.
func finishMetrics(m *Meter) {
	obs.Metrics.RunsCompleted.Inc()
	if m != nil {
		obs.Metrics.PeakCells.Observe(m.PeakCells)
	}
}

// OptimalOrderingMulti is the MTBDD generalization of Remark 2: it minimizes
// a multi-terminal decision diagram for the multi-valued function mt. The
// ZDD rule is not meaningful for multi-valued terminals, so opts.Rule must
// be OBDD (the zero value).
func OptimalOrderingMulti(mt *truthtable.MultiTable, opts *Options) *Result {
	return mustResult(OptimalOrderingMultiCtx(nil, mt, opts))
}

// OptimalOrderingMultiCtx is OptimalOrderingMulti under a context and
// resource budget; see OptimalOrderingCtx for the early-stop contract.
func OptimalOrderingMultiCtx(ctx context.Context, mt *truthtable.MultiTable, opts *Options) (*Result, error) {
	if opts.rule() != OBDD {
		panic("core: OptimalOrderingMulti requires the OBDD rule") //lint:allow nopanic documented programmer-error precondition: MTBDD minimization is OBDD-rule only
	}
	m := meterFor(opts.meter(), opts.budget())
	lim := newLimiter(ctx, opts.budget(), m)
	obs.Metrics.RunsStarted.Inc()
	base, terminals := baseContextMulti(mt)
	m.alloc(base.cells())
	n := mt.NumVars()
	st, err := runDP(base, bitops.FullMask(n), n, OBDD, m, opts.trace(), lim)
	if err != nil {
		m.free(base.cells())
		return nil, err
	}

	full := bitops.FullMask(n)
	order := truthtable.Ordering(st.reconstruct(full))
	minCost := st.minCost[full]
	profile, _ := profileAlong(base, order, OBDD, nil)
	if fin := st.layer[full]; fin != nil {
		m.free(fin.cells())
	}
	m.free(base.cells())
	finishMetrics(m)
	return &Result{
		N:              n,
		Rule:           OBDD,
		MinCost:        minCost,
		Terminals:      len(terminals),
		Size:           minCost + uint64(len(terminals)),
		Ordering:       order,
		Profile:        profile,
		TerminalValues: terminals,
	}, nil
}

// finishResult assembles a Result for a Boolean input: it recomputes the
// level profile along the chosen ordering and determines the terminal set.
func finishResult(tt *truthtable.Table, _ []uint64, order truthtable.Ordering, minCost uint64, rule Rule, m *Meter) *Result {
	n := tt.NumVars()
	base := baseContext(tt)
	profile, _ := profileAlong(base, order, rule, nil)

	var termVals []int
	ones := tt.CountOnes()
	switch {
	case ones == 0:
		termVals = []int{0}
	case ones == tt.Size():
		termVals = []int{1}
	default:
		termVals = []int{0, 1}
	}
	_ = m
	return &Result{
		N:              n,
		Rule:           rule,
		MinCost:        minCost,
		Terminals:      len(termVals),
		Size:           minCost + uint64(len(termVals)),
		Ordering:       order,
		Profile:        profile,
		TerminalValues: termVals,
	}
}

// Profile returns the per-level widths Cost_{order[i]}(f, π) of the diagram
// of f under the given bottom-up ordering, without any optimization. The
// sum of the returned widths plus the terminal count is the diagram size
// under that ordering. It runs in O(n·2^n) time.
func Profile(tt *truthtable.Table, order truthtable.Ordering, rule Rule, m *Meter) []uint64 {
	if len(order) != tt.NumVars() || !order.Valid() {
		panic("core: Profile ordering is not a permutation of the variables") //lint:allow nopanic documented programmer-error precondition: the ordering must be a permutation
	}
	base := baseContext(tt)
	m.alloc(base.cells())
	widths, fin := profileAlong(base, order, rule, m)
	m.free(base.cells())
	if fin != nil {
		m.free(fin.cells())
	}
	if m != nil {
		m.Evaluations++
	}
	obs.Metrics.Evaluations.Inc()
	return widths
}

// SizeUnder returns the total diagram size (nonterminals + terminals) of f
// under the given ordering and rule.
func SizeUnder(tt *truthtable.Table, order truthtable.Ordering, rule Rule, m *Meter) uint64 {
	widths := Profile(tt, order, rule, m)
	var total uint64
	for _, w := range widths {
		total += w
	}
	ones := tt.CountOnes()
	terms := uint64(2)
	if ones == 0 || ones == tt.Size() {
		terms = 1
	}
	return total + terms
}
