package core

import (
	"context"
	"fmt"
	"math/bits"
	"time"

	"obddopt/internal/bitops"
	"obddopt/internal/core/lattice"
	"obddopt/internal/obs"
	"obddopt/internal/truthtable"
)

// Opt configures a solver run; the root facade's options translate to
// these 1:1. Apply a set with NewSolveOptions.
type Opt func(*SolveOptions)

// NewSolveOptions resolves a list of options into the unified option set
// every registered solver accepts.
func NewSolveOptions(opts ...Opt) *SolveOptions {
	o := &SolveOptions{}
	for _, opt := range opts {
		opt(o)
	}
	return o
}

// WithRule selects the diagram variant to minimize (OBDD, the default,
// or ZDD).
func WithRule(r Rule) Opt { return func(o *SolveOptions) { o.Rule = r } }

// WithMeter attaches a Meter accumulating the run's operation counts.
func WithMeter(m *Meter) Opt { return func(o *SolveOptions) { o.Meter = m } }

// WithTrace attaches a Tracer receiving the run's events.
func WithTrace(tr obs.Tracer) Opt { return func(o *SolveOptions) { o.Trace = tr } }

// WithBudget bounds the run's resources (live DP cells, transitions);
// enforced only by the Ctx entry points.
func WithBudget(b Budget) Opt { return func(o *SolveOptions) { o.Budget = b } }

// WithWorkers sets the goroutine count of the parallel dynamic program;
// 0 (the default) selects GOMAXPROCS.
func WithWorkers(n int) Opt { return func(o *SolveOptions) { o.Workers = n } }

// WithSeeder overrides the portfolio's heuristic seeding phase.
func WithSeeder(s Seeder) Opt { return func(o *SolveOptions) { o.Seeder = s } }

// Result reports an exact minimization outcome. The JSON tags define the
// run-report schema shared with the CLI `-json` modes (see internal/obs).
type Result struct {
	// N is the number of variables of the input function.
	N int `json:"n"`
	// Rule is the diagram variant that was minimized.
	Rule Rule `json:"rule"`
	// MinCost is MINCOST_[n]: the number of nonterminal nodes of the
	// minimum diagram.
	MinCost uint64 `json:"min_cost"`
	// Terminals is the number of terminal nodes of the diagram (the
	// number of distinct function values; 2 for a nonconstant Boolean f).
	Terminals int `json:"terminals"`
	// Size is the total diagram size MinCost + Terminals, the quantity
	// the papers call OBDD size (e.g. 2n+2 for the Fig. 1 function).
	Size uint64 `json:"size"`
	// Ordering is an optimal variable ordering in bottom-up convention
	// (Ordering[0] is read last). Ties are broken deterministically by
	// preferring the smallest variable index at each DP step.
	Ordering truthtable.Ordering `json:"ordering"`
	// Profile[i] is the width Cost_{Ordering[i]}(f, π) of level i+1 under
	// the optimal ordering; the widths sum to MinCost.
	Profile []uint64 `json:"profile"`
	// TerminalValues lists the function values of the terminals in
	// increasing order (0/1 for Boolean inputs).
	TerminalValues []int `json:"terminal_values"`
}

// dpState is the rolling-layer subset dynamic program shared by FS and
// FS*: it absorbs subsets of vars (a subset of base.free) on top of the
// fixed context base, layer by layer (Lemma 4 / Lemma 7).
//
// Storage is dense: popcount layer j is three flat arrays — tables
// (arena blocks), costs, and the per-layer parents byte array — each
// indexed by the combinadic rank of the subset (see internal/core/
// lattice), not by hashing masks. Only the newest layer's tables and
// costs are retained (Remark 1's two-layer space bound); the one-byte
// parent pointers are kept for every layer, Σ_j C(nv, j) ≤ 2^nv bytes in
// total, so any absorbed chain can be reconstructed afterwards.
type dpState struct {
	rule  Rule
	meter *Meter
	// base is the caller-owned context FS(⟨…⟩) the layers build on; it is
	// never released by the state.
	base *fsContext
	// vars are the absolute variables the DP absorbs; members lists them
	// ascending, so relative member position p ↔ absolute variable
	// members[p] and ordering ties break identically in either index.
	vars    bitops.Mask
	members []int
	rk      *lattice.Ranker
	// k is the completed layer: tables/costs describe the C(nv, k)
	// subsets of size k.
	k      int
	costs  []uint64
	tables [][]uint32
	// parents[j][r] is the relative member position absorbed last by the
	// rank-r subset of layer j under its optimal order.
	parents [][]uint8
	ws      *workspace
}

// runDP absorbs subsets of vars on top of ctx up to layer stop
// (0 ≤ stop ≤ |vars|), keeping for every subset the minimum-cost context.
// The returned state answers Cost/Context/Take/Reconstruct queries for
// the stop-element subsets K of vars — each context being FS(⟨…, K⟩) —
// and must be retired with Release. The input ctx is not modified.
//
// lim, when non-nil, is polled before every transition; on cancellation
// or budget exhaustion every table the DP still owns (current layer and
// partial next layer, never the caller's base context) is released
// through the meter and the error is returned, so Meter.LiveCells drops
// back to exactly the caller-owned cells.
func runDP(ctx *fsContext, vars bitops.Mask, stop int, rule Rule, m *Meter, tr obs.Tracer, lim *limiter) (*dpState, error) {
	if vars&^ctx.free != 0 {
		panic("core: runDP vars not free in context") //lint:allow nopanic internal invariant: runDP callers pass masks drawn from ctx.free
	}
	nv := vars.Count()
	if stop < 0 || stop > nv {
		panic(fmt.Sprintf("core: runDP stop %d out of range [0,%d]", stop, nv)) //lint:allow nopanic internal invariant: runDP callers bound stop by the mask cardinality
	}
	st := &dpState{
		rule:    rule,
		meter:   m,
		base:    ctx,
		vars:    vars,
		members: vars.Members(make([]int, 0, nv)),
		rk:      lattice.For(nv),
		costs:   []uint64{ctx.cost},
		tables:  [][]uint32{ctx.table},
		parents: make([][]uint8, stop+1),
		ws:      acquireWorkspace(),
	}
	baseCells := ctx.cells()

	for k := 1; k <= stop; k++ {
		prevCount := int(st.rk.LayerSize(k - 1))
		curCount := int(st.rk.LayerSize(k))
		prevCells := baseCells >> uint(k-1)
		// One transition out of a layer-(k−1) table touches size cells —
		// the candidate's table length and the CellOps unit at once.
		size := prevCells / 2
		var layerStart time.Time
		if tr != nil {
			layerStart = time.Now()
			tr.Emit(obs.Event{Kind: obs.KindLayerStart, K: k, Subsets: prevCount})
		}
		var layerOps, transitions uint64
		tables := make([][]uint32, curCount)
		costs := make([]uint64, curCount)
		for i := range costs {
			costs[i] = ^uint64(0) // no candidate kept yet
		}
		lastVar := make([]uint8, curCount)

		// Gosper enumeration visits the previous layer's subsets exactly
		// in rank order, so prevRank walks 0, 1, 2, … in lockstep with
		// prevRel and the layer is three sequential array scans.
		prevRel := bitops.FirstSubsetOfSize(k - 1)
		for prevRank := 0; prevRank < prevCount; prevRank++ {
			prevTable := st.tables[prevRank]
			prevCost := st.costs[prevRank]
			prevFree := ctx.free &^ st.abs(prevRel)
			id0 := ctx.nTerm + uint32(prevCost)
			for p := 0; p < nv; p++ {
				if prevRel.Has(p) {
					continue
				}
				v := st.members[p]
				if err := lim.spend(1); err != nil {
					// Release everything the DP owns: the partial next
					// layer and the completed previous layer (never the
					// caller's base).
					for _, t := range tables {
						if t != nil {
							m.free(size)
							st.ws.ar.PutU32(t)
						}
					}
					if k > 1 {
						for _, t := range st.tables {
							m.free(prevCells)
							st.ws.ar.PutU32(t)
						}
					}
					st.tables, st.costs = nil, nil
					st.ws.release()
					st.ws = nil
					return nil, err
				}
				dst := st.ws.ar.GetU32(size)
				m.alloc(size)
				resetDedup(&st.ws.dd, size, id0)
				w := compactInto(dst, prevTable, bitops.RelativePosition(prevFree, v), rule, id0, &st.ws.dd)
				m.addCells(size)
				layerOps += size
				transitions++
				if tr != nil {
					tr.Emit(obs.Event{Kind: obs.KindCompaction, K: k, Var: v, Cost: w, CellOps: size})
				}
				cand := prevCost + w
				r := st.rk.Rank(prevRel.With(p))
				// Keep the candidate iff it improves the incumbent, ties
				// broken toward the smaller variable — the processing
				// order never shows in the outcome.
				switch cur := costs[r]; {
				case cand < cur || (cand == cur && uint8(p) < lastVar[r]):
					if cur != ^uint64(0) {
						m.free(size)
						st.ws.ar.PutU32(tables[r])
					}
					tables[r], costs[r], lastVar[r] = dst, cand, uint8(p)
				default:
					m.free(size)
					st.ws.ar.PutU32(dst)
				}
			}
			if prevRank+1 < prevCount {
				prevRel, _ = bitops.NextSubsetSameSize(prevRel, nv)
			}
		}
		// Retire the completed layer's tables (Remark 1: only two layers
		// are live at a time). Layer 0 is the caller-owned base context
		// and is not released.
		if k > 1 {
			for _, t := range st.tables {
				m.free(prevCells)
				st.ws.ar.PutU32(t)
			}
		}
		st.tables, st.costs = tables, costs
		st.parents[k] = lastVar
		st.k = k
		obs.Metrics.CellOps.Add(layerOps)
		obs.Metrics.Compactions.Add(transitions)
		if tr != nil {
			ev := obs.Event{
				Kind:    obs.KindLayerEnd,
				K:       k,
				Subsets: curCount,
				CellOps: layerOps,
				Elapsed: time.Since(layerStart),
			}
			if m != nil {
				ev.LiveCells, ev.PeakCells = m.LiveCells, m.PeakCells
			}
			tr.Emit(ev)
		}
	}
	return st, nil
}

// abs expands a relative member mask to the absolute variable mask.
func (st *dpState) abs(rel bitops.Mask) bitops.Mask {
	var a bitops.Mask
	for t := uint64(rel); t != 0; t &= t - 1 {
		a = a.With(st.members[bits.TrailingZeros64(t)])
	}
	return a
}

// rel compresses an absolute variable mask (⊆ vars) to member positions.
func (st *dpState) rel(abs bitops.Mask) bitops.Mask {
	if abs&^st.vars != 0 {
		panic(fmt.Sprintf("core: mask %#x outside the DP variables %#x", uint64(abs), uint64(st.vars))) //lint:allow nopanic internal invariant: state queries use masks drawn from the DP's variable set
	}
	var r bitops.Mask
	for p, v := range st.members {
		if abs.Has(v) {
			r = r.With(p)
		}
	}
	return r
}

// finalRank maps a final-layer subset to its rank, enforcing the layer
// cardinality.
func (st *dpState) finalRank(mask bitops.Mask) uint64 {
	rel := st.rel(mask)
	if rel.Count() != st.k {
		panic(fmt.Sprintf("core: subset %#x is not in the completed layer %d", uint64(mask), st.k)) //lint:allow nopanic internal invariant: final-layer queries use stop-element subsets
	}
	return st.rk.Rank(rel)
}

// Cost returns the optimal context cost after absorbing mask (a
// stop-element subset of the DP's variables).
func (st *dpState) Cost(mask bitops.Mask) uint64 {
	return st.costs[st.finalRank(mask)]
}

// Context returns the kept context FS(⟨…, mask⟩) of the final layer as a
// borrowed view: the state keeps ownership of the table, which stays
// valid until Release.
func (st *dpState) Context(mask bitops.Mask) *fsContext {
	r := st.finalRank(mask)
	if st.k == 0 {
		return st.base
	}
	return &fsContext{
		n:     st.base.n,
		free:  st.base.free &^ mask,
		table: st.tables[r],
		cost:  st.costs[r],
		nTerm: st.base.nTerm,
	}
}

// Take transfers ownership of the final-layer context for mask to the
// caller: Release will no longer touch its table, and the caller must
// free its cells through the meter when done. owned is false only for a
// zero-layer state, where the "final" context is the caller's own base.
func (st *dpState) Take(mask bitops.Mask) (c *fsContext, owned bool) {
	r := st.finalRank(mask)
	if st.k == 0 {
		return st.base, false
	}
	c = &fsContext{
		n:     st.base.n,
		free:  st.base.free &^ mask,
		table: st.tables[r],
		cost:  st.costs[r],
		nTerm: st.base.nTerm,
	}
	st.tables[r] = nil
	return c, true
}

// Reconstruct returns the bottom-up order in which the DP absorbed the
// variables of mask, by walking the per-layer parent pointers.
func (st *dpState) Reconstruct(mask bitops.Mask) []int {
	rel := st.rel(mask)
	k := rel.Count()
	order := make([]int, k)
	for j := k; j >= 1; j-- {
		p := int(st.parents[j][st.rk.Rank(rel)])
		order[j-1] = st.members[p]
		rel = rel.Without(p)
	}
	return order
}

// Release retires the state: every final-layer table still owned returns
// to the arena with a matching meter free, and the workspace goes back
// to the process pool. The caller's base context is untouched. Release
// is idempotent; the state must not be queried afterwards.
func (st *dpState) Release() {
	if st.ws == nil {
		return
	}
	if st.k > 0 {
		size := st.base.cells() >> uint(st.k)
		for i, t := range st.tables {
			if t == nil {
				continue
			}
			st.meter.free(size)
			st.ws.ar.PutU32(t)
			st.tables[i] = nil
		}
	}
	st.ws.release()
	st.ws = nil
}

// OptimalOrdering runs the Friedman–Supowit dynamic program (algorithm FS,
// Theorem 5) on the truth table of f and returns the exact minimum diagram
// size together with an optimal variable ordering. Time and space are
// O*(3^n) in the number of variables n.
func OptimalOrdering(tt *truthtable.Table, opts *SolveOptions) *Result {
	return mustResult(OptimalOrderingCtx(nil, tt, opts))
}

// OptimalOrderingCtx is OptimalOrdering under a context and resource
// budget (opts.Budget): the dynamic program polls a cooperative
// checkpoint before every table compaction and stops with ErrCanceled /
// ErrBudgetExceeded — releasing every live table, so an attached Meter
// ends with LiveCells == 0 — instead of running to completion. The
// dynamic program holds no usable incumbent before it finishes, so an
// early stop returns a nil Result.
func OptimalOrderingCtx(ctx context.Context, tt *truthtable.Table, opts *SolveOptions) (*Result, error) {
	rule := opts.rule()
	m := meterFor(opts.meter(), opts.budget())
	lim := newLimiter(ctx, opts.budget(), m)
	obs.Metrics.RunsStarted.Inc()
	base := baseContext(tt)
	m.alloc(base.cells())
	n := tt.NumVars()
	st, err := runDP(base, bitops.FullMask(n), n, rule, m, opts.trace(), lim)
	if err != nil {
		m.free(base.cells())
		return nil, err
	}

	full := bitops.FullMask(n)
	order := truthtable.Ordering(st.Reconstruct(full))
	minCost := st.Cost(full)
	st.Release()
	res := finishResult(tt, nil, order, minCost, rule, m)
	m.free(base.cells())
	finishMetrics(m)
	return res, nil
}

// finishMetrics folds a completed run into the process-wide registry.
func finishMetrics(m *Meter) {
	obs.Metrics.RunsCompleted.Inc()
	if m != nil {
		obs.Metrics.PeakCells.Observe(m.PeakCells)
	}
}

// OptimalOrderingMulti is the MTBDD generalization of Remark 2: it minimizes
// a multi-terminal decision diagram for the multi-valued function mt. The
// ZDD rule is not meaningful for multi-valued terminals, so opts.Rule must
// be OBDD (the zero value).
func OptimalOrderingMulti(mt *truthtable.MultiTable, opts *SolveOptions) *Result {
	return mustResult(OptimalOrderingMultiCtx(nil, mt, opts))
}

// OptimalOrderingMultiCtx is OptimalOrderingMulti under a context and
// resource budget; see OptimalOrderingCtx for the early-stop contract.
func OptimalOrderingMultiCtx(ctx context.Context, mt *truthtable.MultiTable, opts *SolveOptions) (*Result, error) {
	if opts.rule() != OBDD {
		panic("core: OptimalOrderingMulti requires the OBDD rule") //lint:allow nopanic documented programmer-error precondition: MTBDD minimization is OBDD-rule only
	}
	m := meterFor(opts.meter(), opts.budget())
	lim := newLimiter(ctx, opts.budget(), m)
	obs.Metrics.RunsStarted.Inc()
	base, terminals := baseContextMulti(mt)
	m.alloc(base.cells())
	n := mt.NumVars()
	st, err := runDP(base, bitops.FullMask(n), n, OBDD, m, opts.trace(), lim)
	if err != nil {
		m.free(base.cells())
		return nil, err
	}

	full := bitops.FullMask(n)
	order := truthtable.Ordering(st.Reconstruct(full))
	minCost := st.Cost(full)
	st.Release()
	profile, _ := profileAlong(base, order, OBDD, nil)
	m.free(base.cells())
	finishMetrics(m)
	return &Result{
		N:              n,
		Rule:           OBDD,
		MinCost:        minCost,
		Terminals:      len(terminals),
		Size:           minCost + uint64(len(terminals)),
		Ordering:       order,
		Profile:        profile,
		TerminalValues: terminals,
	}, nil
}

// finishResult assembles a Result for a Boolean input: it recomputes the
// level profile along the chosen ordering and determines the terminal set.
func finishResult(tt *truthtable.Table, _ []uint64, order truthtable.Ordering, minCost uint64, rule Rule, m *Meter) *Result {
	n := tt.NumVars()
	base := baseContext(tt)
	profile, _ := profileAlong(base, order, rule, nil)

	var termVals []int
	ones := tt.CountOnes()
	switch {
	case ones == 0:
		termVals = []int{0}
	case ones == tt.Size():
		termVals = []int{1}
	default:
		termVals = []int{0, 1}
	}
	_ = m
	return &Result{
		N:              n,
		Rule:           rule,
		MinCost:        minCost,
		Terminals:      len(termVals),
		Size:           minCost + uint64(len(termVals)),
		Ordering:       order,
		Profile:        profile,
		TerminalValues: termVals,
	}
}

// Profile returns the per-level widths Cost_{order[i]}(f, π) of the diagram
// of f under the given bottom-up ordering, without any optimization. The
// sum of the returned widths plus the terminal count is the diagram size
// under that ordering. It runs in O(n·2^n) time.
func Profile(tt *truthtable.Table, order truthtable.Ordering, rule Rule, m *Meter) []uint64 {
	if len(order) != tt.NumVars() || !order.Valid() {
		panic("core: Profile ordering is not a permutation of the variables") //lint:allow nopanic documented programmer-error precondition: the ordering must be a permutation
	}
	base := baseContext(tt)
	m.alloc(base.cells())
	widths, fin := profileAlong(base, order, rule, m)
	m.free(base.cells())
	if fin != nil {
		m.free(fin.cells())
	}
	if m != nil {
		m.Evaluations++
	}
	obs.Metrics.Evaluations.Inc()
	return widths
}

// SizeUnder returns the total diagram size (nonterminals + terminals) of f
// under the given ordering and rule.
func SizeUnder(tt *truthtable.Table, order truthtable.Ordering, rule Rule, m *Meter) uint64 {
	widths := Profile(tt, order, rule, m)
	var total uint64
	for _, w := range widths {
		total += w
	}
	ones := tt.CountOnes()
	terms := uint64(2)
	if ones == 0 || ones == tt.Size() {
		terms = 1
	}
	return total + terms
}
