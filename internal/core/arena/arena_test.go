package arena

import (
	"testing"
)

func TestGetPutRoundTrip(t *testing.T) {
	var a Arena
	b := a.GetU32(8)
	if len(b) != 8 {
		t.Fatalf("GetU32(8) len = %d", len(b))
	}
	for i := range b {
		b[i] = uint32(i) + 100
	}
	a.PutU32(b)
	c := a.GetU32(8)
	if len(c) != 8 {
		t.Fatalf("reused block len = %d", len(c))
	}
	if &c[0] != &b[0] {
		t.Fatalf("expected the same backing array back")
	}
	// Contract: blocks come back dirty — the old contents are visible.
	if c[3] != 103 {
		t.Fatalf("block unexpectedly cleared: c[3] = %d", c[3])
	}
	gets, reuses := a.Stats()
	if gets != 2 || reuses != 1 {
		t.Fatalf("Stats = (%d, %d), want (2, 1)", gets, reuses)
	}
}

func TestOffClassNotRecycled(t *testing.T) {
	var a Arena
	b := a.GetU32(12) // not a power of two
	if len(b) != 12 {
		t.Fatalf("GetU32(12) len = %d", len(b))
	}
	a.PutU32(b)
	c := a.GetU32(12)
	if len(b) > 0 && len(c) > 0 && &c[0] == &b[0] {
		// cap(make([]uint32, 12)) may round up; only exact pow2 caps recycle.
		if cap(b) == 12 {
			t.Fatalf("off-class block should not be recycled")
		}
	}
	if a.GetU32(0) != nil {
		t.Fatalf("GetU32(0) should be nil")
	}
	a.PutU32(nil)
}

func TestReset(t *testing.T) {
	var a Arena
	b := a.GetU32(16)
	a.PutU32(b)
	a.Reset()
	c := a.GetU32(16)
	if len(b) > 0 && &c[0] == &b[0] {
		t.Fatalf("Reset should drop free lists")
	}
}

func TestAcquireRelease(t *testing.T) {
	a := Acquire()
	if a == nil {
		t.Fatalf("Acquire returned nil")
	}
	a.PutU32(a.GetU32(4))
	Release(a)
	// Pool reuse is best-effort; just exercise the path again.
	b := Acquire()
	b.GetU32(4)
	Release(b)
}

func TestDedupMatchesMapReference(t *testing.T) {
	var d Dedup
	// Two rounds with different sizes exercise Reset's grow and re-slice
	// paths and verify no state bleeds between compactions.
	for round, nkeys := range []uint64{500, 37} {
		d.Reset(nkeys)
		ref := make(map[uint64]uint32)
		next := uint32(0)
		// A mix of fresh and repeated keys, none zero.
		for i := uint64(0); i < nkeys; i++ {
			key := (i%17)*0x1f3d + i/3 + 1
			wantID, seen := ref[key]
			got, fresh := d.FindOrAssign(key, next)
			if seen {
				if fresh || got != wantID {
					t.Fatalf("round %d key %#x: got (%d, %v), want (%d, false)", round, key, got, fresh, wantID)
				}
			} else {
				if !fresh || got != next {
					t.Fatalf("round %d key %#x: got (%d, %v), want fresh %d", round, key, got, fresh, next)
				}
				ref[key] = next
				next++
			}
		}
	}
}

func TestDedupResetClearsState(t *testing.T) {
	var d Dedup
	d.Reset(4)
	if got, fresh := d.FindOrAssign(42, 7); !fresh || got != 7 {
		t.Fatalf("first insert: (%d, %v)", got, fresh)
	}
	d.Reset(4)
	if got, fresh := d.FindOrAssign(42, 9); !fresh || got != 9 {
		t.Fatalf("after Reset, key should be gone: (%d, %v)", got, fresh)
	}
}

func TestDedupGrowAfterShrink(t *testing.T) {
	var d Dedup
	d.Reset(1000)
	d.Reset(4) // shrink the view
	d.Reset(1000)
	// The original backing array must be back in full (no truncated len).
	for i := uint64(0); i < 1000; i++ {
		if got, fresh := d.FindOrAssign(i+1, uint32(i)); !fresh || got != uint32(i) {
			t.Fatalf("key %d: (%d, %v)", i+1, got, fresh)
		}
	}
}
