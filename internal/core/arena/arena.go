// Package arena provides the recycled storage behind the dynamic
// program's TABLE cells: a slab arena of power-of-two uint32 blocks and
// a reusable open-addressed deduplication scratch. Both exist for the
// same reason — the O*(3^n) subset DP allocates and drops one table per
// transition, and going through the garbage collector for each (a fresh
// zeroed slice plus a fresh map) dominates the runtime long before the
// arithmetic does. An Arena keeps dropped blocks on per-size free lists
// and hands them back dirty (every compaction overwrites every cell), so
// a layer transition touches the same few cache-resident blocks over and
// over instead of streaming new memory.
//
// Arenas are deliberately trivial: they do not track outstanding blocks.
// A block that is never Put back is simply collected by the GC with
// whatever still references it — safety does not depend on the free
// discipline, only recycling efficiency does. Arenas are NOT safe for
// concurrent use; acquire one per goroutine (see Acquire/Release).
package arena

import (
	"math/bits"
	"sync"
)

// maxClass bounds the size classes: blocks up to 2^(maxClass-1) cells
// are recycled, larger requests fall through to plain make (unreachable
// for truth tables, which are capped far below 2^32 cells).
const maxClass = 33

// Arena recycles []uint32 blocks in power-of-two size classes. The zero
// value is ready to use.
type Arena struct {
	free [maxClass][][]uint32
	// gets/reuses count block requests and free-list hits, for tests and
	// effectiveness probes.
	gets, reuses uint64
}

// GetU32 returns a block with len(block) == size. The contents are
// UNSPECIFIED (dirty): callers must overwrite every cell they read.
// Size zero returns nil.
func (a *Arena) GetU32(size uint64) []uint32 {
	if size == 0 {
		return nil
	}
	a.gets++
	c := class(size)
	if c < maxClass && uint64(1)<<uint(c) == size {
		if l := a.free[c]; len(l) > 0 {
			b := l[len(l)-1]
			a.free[c] = l[:len(l)-1]
			a.reuses++
			return b[:size]
		}
		return make([]uint32, size)
	}
	// Off-class size: not recycled.
	return make([]uint32, size)
}

// PutU32 returns a block to the arena for reuse. Only exact power-of-two
// blocks (as handed out by GetU32) are recycled; others are dropped for
// the GC. Put blocks must no longer be referenced by the caller.
func (a *Arena) PutU32(b []uint32) {
	size := uint64(cap(b))
	if size == 0 {
		return
	}
	c := class(size)
	if c < maxClass && uint64(1)<<uint(c) == size {
		a.free[c] = append(a.free[c], b[:size])
	}
}

// Reset drops every free list, letting the GC reclaim the blocks.
func (a *Arena) Reset() {
	for i := range a.free {
		a.free[i] = nil
	}
}

// Stats reports block requests and free-list hits since construction.
func (a *Arena) Stats() (gets, reuses uint64) { return a.gets, a.reuses }

// class returns ceil(log2(size)).
func class(size uint64) int {
	if size <= 1 {
		return 0
	}
	return bits.Len64(size - 1)
}

// pool recycles whole arenas across solver runs, so consecutive Solve
// calls on one process reuse the same warmed slabs instead of faulting
// fresh pages. Arenas carry no per-run state besides their free lists,
// so reuse cannot bleed results between runs — blocks are dirty by
// contract either way.
var pool = sync.Pool{New: func() any { return new(Arena) }}

// Acquire returns an arena for one run (goroutine-local use only).
func Acquire() *Arena { return pool.Get().(*Arena) }

// Release returns an arena to the process-wide pool. The caller must
// not use it afterwards, and no goroutine may still Put into it.
func Release(a *Arena) {
	pool.Put(a) //lint:allow pooldiscipline warm slabs are the point of pooling arenas: blocks are dirty by contract, and Reset would drop the free lists reuse exists for
}
