package arena

// Dedup is the per-compaction node-uniqueness scratch: an open-addressed
// hash table from packed (u0, u1) child-pair keys to node IDs, reused
// across compactions so the hot loop never allocates. It replaces the
// per-call map[uint64]uint32 the compactor historically built — at table
// sizes of 2^k cells the map's per-insert overhead (hashing interface
// plumbing, incremental growth, GC pressure) dominated the compaction
// arithmetic severalfold.
//
// The scratch has two layouts, chosen per compaction by the caller:
//
//   - Compact (Reset32/FindOrAssign32): when every node ID the compaction
//     can read or assign fits in 16 bits — id0 + insertions ≤ 2^16, which
//     holds for every table the solver meets until total BDD cost passes
//     65k nodes — the (u0, u1) pair packs into a 32-bit key and the key
//     and its ID share ONE uint64 slot. A probe is one load and a miss
//     one store, instead of the two-array layout's two of each; on the
//     compaction kernel's hot loop this is worth ~1.5x end to end.
//   - Wide (Reset/FindOrAssign): the general 64-bit-key layout, keys and
//     vals in parallel arrays. Correct for any uint32 IDs.
//
// The zero key doubles as the empty-slot sentinel in both layouts. This
// is sound for every reduction rule the engine supports: a (0, 0) pair
// is never inserted, because under the OBDD/MTBDD rule equal children
// are skipped (u0 == u1) and under the ZDD rule a zero 1-child is
// skipped (u1 == 0).
type Dedup struct {
	// keys backs both layouts: wide stores 64-bit keys here, compact
	// stores key|id<<32 packed slots. vals is wide-only.
	keys []uint64
	vals []uint32
	// shift turns a mixed 64-bit hash into an index: idx = hash >> shift.
	shift uint
	// compact records which Reset variant prepared the scratch, so the
	// compaction kernel can select the matching probe loop.
	compact bool
}

// Reset prepares the scratch for a compaction expecting at most expect
// insertions of arbitrary uint32 IDs, growing the backing arrays if
// needed and clearing the previous compaction's keys. Capacity is the
// next power of two ≥ 2·expect (load factor ≤ 0.5), at least 16.
func (d *Dedup) Reset(expect uint64) {
	capacity := d.prepare(expect)
	if uint64(cap(d.vals)) < capacity {
		d.vals = make([]uint32, capacity)
	} else {
		d.vals = d.vals[:capacity]
	}
	d.compact = false
}

// Reset32 prepares the scratch for a compaction that will only meet node
// IDs below 2^16 — the caller must guarantee id0 + expect ≤ 2^16 (every
// ID already written to the source table is below id0 by construction).
// Probes must then use FindOrAssign32.
func (d *Dedup) Reset32(expect uint64) {
	d.prepare(expect)
	d.compact = true
}

// Compact32 reports whether the last Reset selected the packed 32-bit
// layout.
func (d *Dedup) Compact32() bool { return d.compact }

// prepare sizes, re-slices and clears the shared key/slot array and
// returns the chosen capacity.
func (d *Dedup) prepare(expect uint64) uint64 {
	need := expect * 2
	if need < 16 {
		need = 16
	}
	capacity := uint64(16)
	for capacity < need {
		capacity <<= 1
	}
	d.shift = 64 - uint(log2(capacity))
	if uint64(cap(d.keys)) < capacity {
		d.keys = make([]uint64, capacity)
		return capacity
	}
	// Re-slice the backing array to the requested capacity — smaller
	// compactions clear proportionally less — and clear the stale keys.
	d.keys = d.keys[:capacity]
	clear(d.keys)
	return capacity
}

// FindOrAssign returns the ID recorded for key, or records id for it.
// fresh reports whether id was newly assigned. Wide layout only.
func (d *Dedup) FindOrAssign(key uint64, id uint32) (got uint32, fresh bool) {
	mask := uint64(len(d.keys) - 1)
	slot := (key * 0x9e3779b97f4a7c15) >> d.shift
	for { //lint:allow ctxcheckpoint linear probe over a table Reset sizes to ≥ 2x the insertions, so an empty slot is always reached within the table length

		k := d.keys[slot]
		if k == key {
			return d.vals[slot], false
		}
		if k == 0 {
			d.keys[slot] = key
			d.vals[slot] = id
			return id, true
		}
		slot = (slot + 1) & mask
	}
}

// Slots32 exposes the packed slot array and hash shift for the compact
// layout, letting the compaction kernel keep the probe loop's state in
// registers. The caller must have called Reset32 and must only store
// key|id<<32 values with key != 0.
func (d *Dedup) Slots32() (slots []uint64, shift uint) { return d.keys, d.shift }

// FindOrAssign32 returns the ID recorded for key, or records id for it,
// in the packed layout prepared by Reset32: key and ID share one slot.
// fresh reports whether id was newly assigned.
func (d *Dedup) FindOrAssign32(key uint32, id uint32) (got uint32, fresh bool) {
	slots, shift := d.keys, d.shift
	mask := uint64(len(slots) - 1)
	slot := (uint64(key) * 0x9e3779b97f4a7c15) >> shift
	for { //lint:allow ctxcheckpoint linear probe over a table Reset sizes to ≥ 2x the insertions, so an empty slot is always reached within the table length

		s := slots[slot]
		if uint32(s) == key {
			return uint32(s >> 32), false
		}
		if s == 0 {
			slots[slot] = uint64(key) | uint64(id)<<32
			return id, true
		}
		slot = (slot + 1) & mask
	}
}

func log2(v uint64) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
