package arena

// Dedup is the per-compaction node-uniqueness scratch: an open-addressed
// hash table from packed (u0, u1) child-pair keys to node IDs, reused
// across compactions so the hot loop never allocates. It replaces the
// per-call map[uint64]uint32 the compactor historically built — at table
// sizes of 2^k cells the map's per-insert overhead (hashing interface
// plumbing, incremental growth, GC pressure) dominated the compaction
// arithmetic severalfold.
//
// The zero key doubles as the empty-slot sentinel. This is sound for
// every reduction rule the engine supports: a (0, 0) pair is never
// inserted, because under the OBDD/MTBDD rule equal children are skipped
// (u0 == u1) and under the ZDD rule a zero 1-child is skipped (u1 == 0).
type Dedup struct {
	keys []uint64
	vals []uint32
	// shift turns a mixed 64-bit hash into an index: idx = hash >> shift.
	shift uint
}

// Reset prepares the scratch for a compaction expecting at most expect
// insertions, growing the backing arrays if needed and clearing the
// previous compaction's keys. Capacity is the next power of two ≥
// 2·expect (load factor ≤ 0.5), at least 16.
func (d *Dedup) Reset(expect uint64) {
	need := expect * 2
	if need < 16 {
		need = 16
	}
	capacity := uint64(16)
	for capacity < need {
		capacity <<= 1
	}
	d.shift = 64 - uint(log2(capacity))
	if uint64(cap(d.keys)) < capacity {
		d.keys = make([]uint64, capacity)
		d.vals = make([]uint32, capacity)
		return
	}
	// Re-slice the backing arrays to the requested capacity — smaller
	// compactions clear proportionally less — and clear the stale keys.
	d.keys = d.keys[:capacity]
	d.vals = d.vals[:capacity]
	clear(d.keys)
}

// FindOrAssign returns the ID recorded for key, or records id for it.
// fresh reports whether id was newly assigned.
func (d *Dedup) FindOrAssign(key uint64, id uint32) (got uint32, fresh bool) {
	mask := uint64(len(d.keys) - 1)
	slot := (key * 0x9e3779b97f4a7c15) >> d.shift
	for { //lint:allow ctxcheckpoint linear probe over a table Reset sizes to ≥ 2x the insertions, so an empty slot is always reached within the table length

		k := d.keys[slot]
		if k == key {
			return d.vals[slot], false
		}
		if k == 0 {
			d.keys[slot] = key
			d.vals[slot] = id
			return id, true
		}
		slot = (slot + 1) & mask
	}
}

func log2(v uint64) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
