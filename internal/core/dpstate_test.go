package core

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"obddopt/internal/bitops"
	"obddopt/internal/truthtable"
)

// referenceDP is a deliberately naive map-based subset DP — the storage
// scheme the rank-indexed core replaced — kept here as the tie-breaking
// oracle: at every subset it keeps the strictly cheaper candidate, ties
// broken toward the smaller variable index, independent of processing
// order. The arena-backed DP must reproduce its cost AND its ordering
// bit for bit.
func referenceDP(tt *truthtable.Table, rule Rule) (uint64, []int) {
	n := tt.NumVars()
	ws := acquireWorkspace()
	defer ws.release()
	base := baseContext(tt)
	layer := map[bitops.Mask]*fsContext{0: base}
	bestLast := make(map[bitops.Mask]int)
	for k := 1; k <= n; k++ {
		next := make(map[bitops.Mask]*fsContext)
		for prevMask, prevCtx := range layer {
			for v := 0; v < n; v++ {
				if prevMask.Has(v) {
					continue
				}
				cand, _ := compact(prevCtx, v, rule, nil, ws)
				key := prevMask.With(v)
				if cur, ok := next[key]; !ok || cand.cost < cur.cost ||
					(cand.cost == cur.cost && v < bestLast[key]) {
					next[key] = cand
					bestLast[key] = v
				}
			}
		}
		layer = next
	}
	full := bitops.FullMask(n)
	minCost := layer[full].cost
	order := make([]int, n)
	mask := full
	for i := n - 1; i >= 0; i-- {
		v := bestLast[mask]
		order[i] = v
		mask = mask.Without(v)
	}
	return minCost, order
}

// TestReconstructMatchesMapReference pins the rank-indexed DP — cost,
// reconstruction, and especially tie-breaking — to the map-based
// reference on random functions under both rules.
func TestReconstructMatchesMapReference(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 24; trial++ {
		n := 3 + trial%5 // 3..7
		f := truthtable.Random(n, rng)
		for _, rule := range []Rule{OBDD, ZDD} {
			wantCost, wantOrder := referenceDP(f, rule)
			res := OptimalOrdering(f, &SolveOptions{Rule: rule})
			if res.MinCost != wantCost {
				t.Fatalf("n=%d rule=%v: MinCost %d, reference %d", n, rule, res.MinCost, wantCost)
			}
			if !reflect.DeepEqual([]int(res.Ordering), wantOrder) {
				t.Fatalf("n=%d rule=%v: ordering %v, reference tie-break picks %v",
					n, rule, res.Ordering, wantOrder)
			}
		}
	}
}

// TestReconstructTieBreakSymmetric checks the documented tie rule on
// fully symmetric functions, where every ordering is optimal and ONLY
// the tie rule determines the answer: the DP must return the same
// ordering as the reference, and repeat runs must agree exactly.
func TestReconstructTieBreakSymmetric(t *testing.T) {
	for n := 3; n <= 7; n++ {
		f := truthtable.FromFunc(n, func(x []bool) bool {
			c := 0
			for _, b := range x {
				if b {
					c++
				}
			}
			return c%2 == 1 // parity: invariant under every permutation
		})
		_, want := referenceDP(f, OBDD)
		first := OptimalOrdering(f, nil)
		if !reflect.DeepEqual([]int(first.Ordering), want) {
			t.Fatalf("n=%d: symmetric tie-break ordering %v, reference %v", n, first.Ordering, want)
		}
		for run := 0; run < 3; run++ {
			if got := OptimalOrdering(f, nil); !reflect.DeepEqual(got.Ordering, first.Ordering) {
				t.Fatalf("n=%d run %d: ordering %v changed from %v", n, run, got.Ordering, first.Ordering)
			}
		}
	}
}

// TestDPStateTakeRelease exercises the ownership contract: Take removes
// a table from the state, Release frees the rest, and the meter balances
// to exactly the caller-held cells.
func TestDPStateTakeRelease(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := truthtable.Random(6, rng)
	m := &Meter{}
	base := baseContext(f)
	m.alloc(base.cells())

	st, err := runDP(base, bitops.FullMask(6), 3, OBDD, m, nil, nil)
	if err != nil {
		t.Fatalf("runDP: %v", err)
	}
	K := bitops.Mask(0b000111)
	wantCost := st.Cost(K)
	ctxK, owned := st.Take(K)
	if !owned {
		t.Fatalf("Take(%#x) on a 3-layer state not owned", uint64(K))
	}
	if ctxK.cost != wantCost {
		t.Fatalf("taken context cost %d, Cost says %d", ctxK.cost, wantCost)
	}
	if ctxK.free != base.free&^K {
		t.Fatalf("taken context free %#x, want %#x", uint64(ctxK.free), uint64(base.free&^K))
	}
	st.Release()
	st.Release() // idempotent
	if want := base.cells() + ctxK.cells(); m.LiveCells != want {
		t.Fatalf("after Release, LiveCells %d, want base+taken = %d", m.LiveCells, want)
	}
	m.free(ctxK.cells())
	m.free(base.cells())
	if m.LiveCells != 0 {
		t.Fatalf("meter out of balance: LiveCells %d", m.LiveCells)
	}

	// A zero-layer state hands back the caller's own base, unowned.
	st0, err := runDP(base, bitops.FullMask(6), 0, OBDD, nil, nil, nil)
	if err != nil {
		t.Fatalf("runDP stop=0: %v", err)
	}
	c0, owned0 := st0.Take(0)
	if owned0 || c0 != base {
		t.Fatalf("Take on zero-layer state: owned=%v ctx==base=%v", owned0, c0 == base)
	}
	st0.Release()
}

// TestArenaReuseAcrossSolves runs the same problem repeatedly with other
// solves interleaved, so pooled workspaces are reused dirty: results and
// meters must not drift, and every run must balance to LiveCells == 0.
func TestArenaReuseAcrossSolves(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	f := truthtable.Random(8, rng)
	g := truthtable.Random(8, rng)
	first := OptimalOrdering(f, &SolveOptions{Meter: &Meter{}})
	var prev Meter
	for i := 0; i < 8; i++ {
		m := &Meter{}
		res := OptimalOrdering(f, &SolveOptions{Meter: m})
		// Dirty the pooled arenas between the runs under test.
		OptimalOrdering(g, &SolveOptions{Rule: ZDD})
		BranchAndBound(g, nil)
		if res.MinCost != first.MinCost ||
			!reflect.DeepEqual(res.Ordering, first.Ordering) ||
			!reflect.DeepEqual(res.Profile, first.Profile) {
			t.Fatalf("run %d: result drifted under workspace reuse: %+v vs %+v", i, res, first)
		}
		if m.LiveCells != 0 {
			t.Fatalf("run %d: LiveCells %d after a completed solve", i, m.LiveCells)
		}
		if i > 0 && *m != prev {
			t.Fatalf("run %d: meter drifted under workspace reuse: %+v vs %+v", i, *m, prev)
		}
		prev = *m
	}
}

// TestArenaCleanAfterAbort aborts a run on a budget, then solves the
// same function to completion: the abort must leave the meter balanced
// and the recycled workspace must not bleed state into the next run.
func TestArenaCleanAfterAbort(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	f := truthtable.Random(8, rng)
	want := OptimalOrdering(f, nil)
	for _, nodes := range []uint64{1, 17, 100} {
		m := &Meter{}
		res, err := OptimalOrderingCtx(nil, f, &SolveOptions{Meter: m, Budget: Budget{MaxNodes: nodes}})
		if !errors.Is(err, ErrBudgetExceeded) || res != nil {
			t.Fatalf("MaxNodes=%d: res=%v err=%v, want nil result with ErrBudgetExceeded", nodes, res, err)
		}
		if m.LiveCells != 0 {
			t.Fatalf("MaxNodes=%d: LiveCells %d after abort", nodes, m.LiveCells)
		}
		got := OptimalOrdering(f, nil)
		if got.MinCost != want.MinCost || !reflect.DeepEqual(got.Ordering, want.Ordering) {
			t.Fatalf("MaxNodes=%d: post-abort solve drifted: %+v vs %+v", nodes, got, want)
		}
	}
}
