package core

import (
	"math/rand"
	"testing"

	"obddopt/internal/quantum"
	"obddopt/internal/truthtable"
)

func TestLadderDepthZeroEqualsDnC(t *testing.T) {
	rng := rand.New(rand.NewSource(171))
	for trial := 0; trial < 10; trial++ {
		n := 5 + trial%4
		f := truthtable.Random(n, rng)
		dnc := DivideAndConquer(f, nil)
		lad := DivideAndConquerComposed(f, &LadderOptions{Depth: 0})
		if dnc.MinCost != lad.MinCost {
			t.Fatalf("n=%d: depth-0 ladder %d != DnC %d", n, lad.MinCost, dnc.MinCost)
		}
	}
}

func TestLadderAllDepthsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(172))
	for trial := 0; trial < 6; trial++ {
		n := 6 + trial%3
		f := truthtable.Random(n, rng)
		want := OptimalOrdering(f, nil).MinCost
		for depth := 0; depth <= 2; depth++ {
			got := DivideAndConquerComposed(f, &LadderOptions{Depth: depth})
			if got.MinCost != want {
				t.Fatalf("n=%d depth=%d: %d != FS %d", n, depth, got.MinCost, want)
			}
			if v := SizeUnder(f, got.Ordering, OBDD, nil); v != got.Size {
				t.Fatalf("n=%d depth=%d: ordering does not realize size", n, depth)
			}
		}
	}
}

func TestLadderZDD(t *testing.T) {
	rng := rand.New(rand.NewSource(173))
	f := truthtable.Random(7, rng)
	want := OptimalOrdering(f, &SolveOptions{Rule: ZDD}).MinCost
	got := DivideAndConquerComposed(f, &LadderOptions{Rule: ZDD, Depth: 1})
	if got.MinCost != want {
		t.Fatalf("ZDD ladder %d != FS %d", got.MinCost, want)
	}
}

func TestLadderQueriesGrowWithDepth(t *testing.T) {
	// Deeper composition invokes minimum finding inside the extension
	// calls, so the metered query count (and invocation count) grows
	// with depth on the same instance — the structural signature of
	// Theorem 13's tower.
	rng := rand.New(rand.NewSource(174))
	f := truthtable.Random(8, rng)
	var prevInvocations uint64
	for depth := 0; depth <= 2; depth++ {
		qm := &quantum.Meter{}
		DivideAndConquerComposed(f, &LadderOptions{
			Depth:     depth,
			Minimizer: &quantum.Exact{Eps: 1e-6, Meter: qm},
		})
		if depth > 0 && qm.Invocations <= prevInvocations {
			t.Errorf("depth %d: invocations %d did not grow (prev %d)",
				depth, qm.Invocations, prevInvocations)
		}
		prevInvocations = qm.Invocations
	}
}

func TestLadderMeterLeakFree(t *testing.T) {
	rng := rand.New(rand.NewSource(175))
	f := truthtable.Random(7, rng)
	for depth := 0; depth <= 2; depth++ {
		m := &Meter{}
		DivideAndConquerComposed(f, &LadderOptions{Depth: depth, Meter: m})
		if m.LiveCells != 0 {
			t.Fatalf("depth %d: LiveCells %d after run", depth, m.LiveCells)
		}
	}
}

func TestLadderNoisyStaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(176))
	f := truthtable.Random(6, rng)
	opt := OptimalOrdering(f, nil).MinCost
	res := DivideAndConquerComposed(f, &LadderOptions{
		Depth:     1,
		Minimizer: &quantum.Noisy{Eps: 1, Rng: rng},
	})
	if !res.Ordering.Valid() {
		t.Fatalf("noisy ladder produced invalid ordering")
	}
	if res.MinCost < opt {
		t.Fatalf("noisy ladder beat the optimum")
	}
	if got := SizeUnder(f, res.Ordering, OBDD, nil); got != res.Size {
		t.Fatalf("noisy ladder misreports size")
	}
}

func TestLadderTinyInput(t *testing.T) {
	f := truthtable.Var(2, 1)
	res := DivideAndConquerComposed(f, &LadderOptions{Depth: 3})
	if res.MinCost != 1 {
		t.Fatalf("tiny ladder MinCost %d", res.MinCost)
	}
}
