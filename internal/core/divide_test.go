package core

import (
	"math/rand"
	"testing"

	"obddopt/internal/bitops"
	"obddopt/internal/quantum"
	"obddopt/internal/truthtable"
)

func TestDnCEqualsFS(t *testing.T) {
	rng := rand.New(rand.NewSource(1001))
	for trial := 0; trial < 20; trial++ {
		n := 4 + trial%5 // 4..8
		f := truthtable.Random(n, rng)
		fs := OptimalOrdering(f, nil)
		dnc := DivideAndConquer(f, nil)
		if fs.MinCost != dnc.MinCost {
			t.Fatalf("n=%d: DnC %d != FS %d (f=%s)", n, dnc.MinCost, fs.MinCost, f.Hex())
		}
		if got := SizeUnder(f, dnc.Ordering, OBDD, nil); got != dnc.Size {
			t.Fatalf("DnC ordering does not realize its claimed size")
		}
	}
}

func TestDnCEqualsFSWithSingleSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 10; trial++ {
		n := 5 + trial%3
		f := truthtable.Random(n, rng)
		fs := OptimalOrdering(f, nil)
		dnc := DivideAndConquer(f, &DnCOptions{Alphas: []float64{0.4}})
		if fs.MinCost != dnc.MinCost {
			t.Fatalf("n=%d single split: DnC %d != FS %d", n, dnc.MinCost, fs.MinCost)
		}
	}
}

func TestDnCThreeSplits(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	n := 8
	f := truthtable.Random(n, rng)
	fs := OptimalOrdering(f, nil)
	dnc := DivideAndConquer(f, &DnCOptions{Alphas: []float64{0.2, 0.45, 0.7}})
	if fs.MinCost != dnc.MinCost {
		t.Fatalf("three splits: DnC %d != FS %d", dnc.MinCost, fs.MinCost)
	}
}

func TestDnCZDDRule(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 8; trial++ {
		n := 5 + trial%3
		f := truthtable.Random(n, rng)
		fs := OptimalOrdering(f, &SolveOptions{Rule: ZDD})
		dnc := DivideAndConquer(f, &DnCOptions{Rule: ZDD})
		if fs.MinCost != dnc.MinCost {
			t.Fatalf("ZDD n=%d: DnC %d != FS %d", n, dnc.MinCost, fs.MinCost)
		}
	}
}

func TestDnCDegeneratesToFSOnTinyInputs(t *testing.T) {
	// For n ≤ 2 the default fractions round out of range and DnC must
	// fall back to FS.
	for n := 0; n <= 2; n++ {
		f := truthtable.Var(maxInt(n, 1), 0)
		if n == 0 {
			f = truthtable.Const(0, true)
		}
		fs := OptimalOrdering(f, nil)
		dnc := DivideAndConquer(f, nil)
		if fs.MinCost != dnc.MinCost {
			t.Errorf("n=%d fallback mismatch", n)
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestDnCWithDurrHoyerSimulator(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	qm := &quantum.Meter{}
	f := truthtable.Random(7, rng)
	fs := OptimalOrdering(f, nil)
	dnc := DivideAndConquer(f, &DnCOptions{
		Minimizer: &quantum.DurrHoyer{Rng: rng, Meter: qm},
	})
	if fs.MinCost != dnc.MinCost {
		t.Fatalf("Dürr–Høyer simulation broke exactness: %d != %d", dnc.MinCost, fs.MinCost)
	}
	if qm.Invocations == 0 || qm.Queries <= 0 {
		t.Errorf("quantum meter not populated: %+v", qm)
	}
	if qm.OracleEvals == 0 {
		t.Errorf("oracle evals not counted")
	}
}

func TestDnCNoisyMinimizerStaysValid(t *testing.T) {
	// With ε = 1 the minimizer errs whenever it can; the result must
	// still be a valid ordering whose size matches its own claim, and at
	// least the FS optimum (Theorem 1's degradation mode).
	rng := rand.New(rand.NewSource(13))
	suboptimal := 0
	for trial := 0; trial < 10; trial++ {
		f := truthtable.Random(6, rng)
		fs := OptimalOrdering(f, nil)
		dnc := DivideAndConquer(f, &DnCOptions{
			Minimizer: &quantum.Noisy{Eps: 1, Rng: rng},
		})
		if !dnc.Ordering.Valid() {
			t.Fatalf("noisy DnC produced invalid ordering %v", dnc.Ordering)
		}
		if got := SizeUnder(f, dnc.Ordering, OBDD, nil); got != dnc.Size {
			t.Fatalf("noisy DnC misreports its own size: %d vs %d", got, dnc.Size)
		}
		if dnc.MinCost < fs.MinCost {
			t.Fatalf("noisy DnC beat the optimum — impossible")
		}
		if dnc.MinCost > fs.MinCost {
			suboptimal++
		}
	}
	if suboptimal == 0 {
		t.Errorf("ε=1 noise never produced a suboptimal result across 10 trials; injection seems inert")
	}
}

func TestDnCMeterLeakFree(t *testing.T) {
	m := &Meter{}
	f := achilles(3)
	DivideAndConquer(f, &DnCOptions{Meter: m})
	if m.LiveCells != 0 {
		t.Errorf("LiveCells = %d after DnC, want 0 (table leak)", m.LiveCells)
	}
	if m.PeakCells == 0 || m.CellOps == 0 {
		t.Errorf("meter not populated: %+v", m)
	}
}

func TestNormalizeSizes(t *testing.T) {
	cases := []struct {
		n      int
		alphas []float64
		want   []int
	}{
		{10, []float64{0.2, 0.4}, []int{2, 4}},
		{10, []float64{0.18, 0.22}, []int{2}}, // collision collapses
		{3, []float64{0.05, 0.9999}, []int{}}, // 0.05·3 rounds to 0; 0.9999·3 rounds to 3 = n
		{8, []float64{0.192754, 0.334571}, []int{2, 3}},
	}
	for _, c := range cases {
		got := normalizeSizes(c.n, c.alphas)
		if len(got) != len(c.want) {
			t.Errorf("normalizeSizes(%d, %v) = %v, want %v", c.n, c.alphas, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("normalizeSizes(%d, %v) = %v, want %v", c.n, c.alphas, got, c.want)
			}
		}
	}
}

func TestSubsetsWithin(t *testing.T) {
	L := bitops.Mask(0b101100) // members 2,3,5
	subs := subsetsWithin(L, 2)
	if len(subs) != 3 {
		t.Fatalf("expected 3 2-subsets, got %d", len(subs))
	}
	for _, s := range subs {
		if s&^L != 0 || s.Count() != 2 {
			t.Errorf("bad subset %#b of %#b", s, L)
		}
	}
}
