package core

import (
	stdctx "context"
	"math"
	"sort"

	"obddopt/internal/bitops"
	"obddopt/internal/obs"
	"obddopt/internal/quantum"
	"obddopt/internal/truthtable"
)

// DnCOptions configures the divide-and-conquer algorithm OptOBDD(k, α).
type DnCOptions struct {
	// Rule selects the diagram variant (OBDD or ZDD).
	Rule Rule
	// Meter, if non-nil, accumulates table-compaction counts.
	Meter *Meter
	// Trace, if non-nil, receives split/merge recursion events, the
	// layer events of every inner dynamic program, and — when the
	// default minimizer is used — quantum query batches. A caller-
	// supplied Minimizer wires its own Trace field if batch events are
	// wanted.
	Trace obs.Tracer
	// Minimizer performs minimum finding over division-point candidates.
	// Nil selects the exact simulator (quantum.Exact with ε = 2^−n).
	Minimizer quantum.Minimizer
	// Alphas are the division fractions 0 < α₁ < … < α_k < 1 of
	// Theorems 10/13. Nil selects the two-parameter optimum of Appendix B
	// (α = 0.192754, 0.334571). Fractions are rounded to level counts and
	// deduplicated for small n.
	Alphas []float64
	// Budget bounds the run's resources; the zero value is unlimited.
	// Enforced only by DivideAndConquerCtx.
	Budget Budget
}

func (o *DnCOptions) rule() Rule {
	if o == nil {
		return OBDD
	}
	return o.Rule
}

func (o *DnCOptions) meter() *Meter {
	if o == nil {
		return nil
	}
	return o.Meter
}

func (o *DnCOptions) trace() obs.Tracer {
	if o == nil {
		return nil
	}
	return o.Trace
}

func (o *DnCOptions) budget() Budget {
	if o == nil {
		return Budget{}
	}
	return o.Budget
}

// DefaultAlphas is the two-division-point parameter vector α* of the
// restatement's Appendix B, the smallest configuration that already beats
// the single split.
var DefaultAlphas = []float64{0.192754, 0.334571}

// normalizeSizes converts fractions to strictly increasing integer level
// counts in [1, n−1]. Collapsed or out-of-range entries are dropped.
func normalizeSizes(n int, alphas []float64) []int {
	var sizes []int
	for _, a := range alphas {
		s := int(math.Round(a * float64(n)))
		if s < 1 || s > n-1 {
			continue
		}
		if len(sizes) > 0 && s <= sizes[len(sizes)-1] {
			continue
		}
		sizes = append(sizes, s)
	}
	sort.Ints(sizes)
	return sizes
}

// DivideAndConquer runs OptOBDD(k, α) (Theorem 10) with the configured
// minimum-finding strategy: the ordering problem is recursively split at
// the division points (Lemma 9), the bottom fragment is solved via the
// precomputed FS layer, the upper fragments via FS* composition, and the
// division subsets are chosen by (simulated) quantum minimum finding.
//
// With the exact simulator the result equals OptimalOrdering's; with the
// noisy simulator the returned ordering is always valid but may be
// non-minimum with the injected probability — exactly the guarantee of
// Theorem 1.
func DivideAndConquer(tt *truthtable.Table, opts *DnCOptions) *Result {
	return mustResult(DivideAndConquerCtx(nil, tt, opts))
}

// DivideAndConquerCtx is DivideAndConquer under a context and resource
// budget: every inner dynamic program polls the cooperative checkpoint,
// and the minimum-finding recursion unwinds — releasing all owned
// tables — as soon as a checkpoint fires. The recursion holds no
// complete ordering before it finishes, so an early stop returns a nil
// Result with ErrCanceled / ErrBudgetExceeded.
func DivideAndConquerCtx(ctx stdctx.Context, tt *truthtable.Table, opts *DnCOptions) (*Result, error) {
	rule, tr := opts.rule(), opts.trace()
	m := meterFor(opts.meter(), opts.budget())
	n := tt.NumVars()
	alphas := DefaultAlphas
	if opts != nil && opts.Alphas != nil {
		alphas = opts.Alphas
	}
	sizes := normalizeSizes(n, alphas)
	if len(sizes) == 0 {
		// The function is too small to split; the algorithm degenerates
		// to plain FS, as the papers' analysis assumes Ω(n) block sizes.
		return OptimalOrderingCtx(ctx, tt, &SolveOptions{Rule: rule, Meter: m, Trace: tr, Budget: opts.budget()})
	}
	lim := newLimiter(ctx, opts.budget(), m)
	obs.Metrics.RunsStarted.Inc()
	var minz quantum.Minimizer
	if opts != nil && opts.Minimizer != nil {
		minz = opts.Minimizer
	} else {
		minz = &quantum.Exact{Eps: math.Pow(2, -float64(n)), Ctx: ctx, Trace: tr}
	}

	base := baseContext(tt)
	m.alloc(base.cells())
	full := bitops.FullMask(n)

	// Preprocessing phase (line 3 of the pseudocode): compute FS(K) for
	// every K of size sizes[0] classically and keep the whole layer.
	pre, err := runDP(base, full, sizes[0], rule, m, tr, lim)
	if err != nil {
		m.free(base.cells())
		return nil, err
	}

	d := &dncRun{rule: rule, m: m, tr: tr, minz: minz, sizes: sizes, pre: pre, lim: lim}
	fin, order, owned, err := d.solve(full, len(sizes))
	if err == nil && d.err != nil {
		// A checkpoint fired inside a minimizer-driven evaluation.
		err = d.err
	}
	if err != nil {
		if owned {
			m.free(fin.cells())
		}
		pre.Release()
		m.free(base.cells())
		return nil, err
	}
	minCost := fin.cost
	if owned {
		m.free(fin.cells())
	}
	pre.Release()
	m.free(base.cells())
	finishMetrics(m)
	return finishResult(tt, nil, truthtable.Ordering(order), minCost, rule, m), nil
}

// dncRun carries the shared state of one DivideAndConquer invocation.
type dncRun struct {
	rule  Rule
	m     *Meter
	tr    obs.Tracer
	minz  quantum.Minimizer
	sizes []int
	pre   *dpState // precomputed bottom layer: FS(K) for |K| = sizes[0]
	lim   *limiter
	// err latches the first checkpoint failure observed inside a
	// minimizer-driven cost evaluation, whose uint64-only signature
	// cannot carry it; once set, further evaluations return immediately.
	err error
}

// solve implements Function DivideAndConquer(L, t) of the pseudocode: it
// returns the optimal context absorbing exactly the variables of L, the
// bottom-up order of L, and whether the caller owns (must free) the
// context's table.
func (d *dncRun) solve(L bitops.Mask, t int) (out *fsContext, order []int, owned bool, err error) {
	if t == 0 {
		// FS(L) has been precomputed (line 7); the pre state keeps
		// ownership of the borrowed context.
		return d.pre.Context(L), d.pre.Reconstruct(L), false, nil
	}
	s := d.sizes[t-1]
	if s >= L.Count() {
		// Degenerate split (small n): skip this division point.
		return d.solve(L, t-1)
	}
	// Enumerate the candidate division subsets K ⊆ L, |K| = s.
	cands := subsetsWithin(L, s)
	if d.tr != nil {
		d.tr.Emit(obs.Event{Kind: obs.KindDnCSplit, Depth: t, Mask: uint64(L), Subsets: len(cands)})
	}

	eval := func(i uint64) uint64 {
		if d.err != nil {
			// A previous evaluation hit a checkpoint; drain the
			// remaining minimizer queries without doing work.
			return ^uint64(0)
		}
		K := cands[i]
		ctxK, _, ownedK, errK := d.solve(K, t-1)
		if errK != nil {
			d.err = errK
			return ^uint64(0)
		}
		st, errDP := runDP(ctxK, L&^K, (L &^ K).Count(), d.rule, d.m, d.tr, d.lim)
		if errDP != nil {
			if ownedK {
				d.m.free(ctxK.cells())
			}
			d.err = errDP
			return ^uint64(0)
		}
		cost := st.Cost(L &^ K)
		st.Release()
		if ownedK {
			d.m.free(ctxK.cells())
		}
		if d.m != nil {
			d.m.Evaluations++
		}
		obs.Metrics.Evaluations.Inc()
		return cost
	}
	bestIdx := d.minz.MinIndex(uint64(len(cands)), eval)
	if d.err != nil {
		return nil, nil, false, d.err
	}

	// Recompute the winning split to obtain its context and ordering.
	K := cands[bestIdx]
	ctxK, orderK, ownedK, err := d.solve(K, t-1)
	if err != nil {
		return nil, nil, false, err
	}
	st, err := runDP(ctxK, L&^K, (L &^ K).Count(), d.rule, d.m, d.tr, d.lim)
	if err != nil {
		if ownedK {
			d.m.free(ctxK.cells())
		}
		return nil, nil, false, err
	}
	if d.tr != nil {
		d.tr.Emit(obs.Event{Kind: obs.KindDnCMerge, Depth: t, Mask: uint64(K), Cost: st.Cost(L &^ K)})
	}
	order = append(append([]int{}, orderK...), st.Reconstruct(L&^K)...)
	fin, ownedFin := st.Take(L &^ K)
	st.Release()
	if !ownedFin {
		// Zero-layer extension: the "final" context is ctxK itself.
		return ctxK, order, ownedK, nil
	}
	if ownedK {
		d.m.free(ctxK.cells())
	}
	return fin, order, true, nil
}

// subsetsWithin lists all s-element subsets of the set L, in deterministic
// (lexicographic over member positions) order.
func subsetsWithin(L bitops.Mask, s int) []bitops.Mask {
	members := L.Members(nil)
	nm := len(members)
	var out []bitops.Mask
	bitops.SubsetsOfSize(nm, s, func(rel bitops.Mask) {
		var abs bitops.Mask
		for _, p := range rel.Members(nil) {
			abs = abs.With(members[p])
		}
		out = append(out, abs)
	})
	return out
}
