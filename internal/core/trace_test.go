package core

import (
	"sync"
	"testing"

	"obddopt/internal/obs"
	"obddopt/internal/truthtable"
)

// traceFixture is a function with enough structure that every solver does
// real work: x1&x2 | x3&x4 | x5&x6 over 6 variables.
func traceFixture(t *testing.T) *truthtable.Table {
	t.Helper()
	tt := truthtable.FromFunc(6, func(x []bool) bool {
		return x[0] && x[1] || x[2] && x[3] || x[4] && x[5]
	})
	return tt
}

// TestTraceLayerEventsFS checks the per-layer event contract of the
// dynamic program: exactly n LayerStart and n LayerEnd events, in
// cardinality order, and the layer cell-op totals summing to the meter's.
func TestTraceLayerEventsFS(t *testing.T) {
	tt := traceFixture(t)
	n := tt.NumVars()
	rec := obs.NewRecorder()
	m := &Meter{}
	res := OptimalOrdering(tt, &SolveOptions{Meter: m, Trace: rec})

	if got := rec.Count(obs.KindLayerStart); got != n {
		t.Errorf("LayerStart events = %d, want %d", got, n)
	}
	if got := rec.Count(obs.KindLayerEnd); got != n {
		t.Errorf("LayerEnd events = %d, want %d", got, n)
	}
	k := 0
	for _, ev := range rec.Events() {
		if ev.Kind != obs.KindLayerEnd {
			continue
		}
		k++
		if ev.K != k {
			t.Errorf("LayerEnd out of order: got k=%d at position %d", ev.K, k)
		}
		if ev.Subsets <= 0 {
			t.Errorf("layer %d reports %d subsets", ev.K, ev.Subsets)
		}
	}
	if sum := rec.SumCellOps(obs.KindLayerEnd); sum != m.CellOps {
		t.Errorf("Σ LayerEnd.CellOps = %d, want Meter.CellOps = %d", sum, m.CellOps)
	}
	// Per-compaction events must also sum to the meter (they partition
	// the same work).
	if sum := rec.SumCellOps(obs.KindCompaction); sum != m.CellOps {
		t.Errorf("Σ Compaction.CellOps = %d, want Meter.CellOps = %d", sum, m.CellOps)
	}
	if res.MinCost == 0 {
		t.Fatalf("degenerate fixture")
	}
}

// TestTraceLayerEventsParallel checks that the parallel DP emits the same
// layer-event contract from its coordinator, with cell ops matching the
// merged meter.
func TestTraceLayerEventsParallel(t *testing.T) {
	tt := traceFixture(t)
	n := tt.NumVars()
	rec := obs.NewRecorder()
	m := &Meter{}
	res := mustResult(OptimalOrderingParallel(nil, tt, &SolveOptions{Meter: m, Trace: rec, Workers: 4}))

	if got := rec.Count(obs.KindLayerEnd); got != n {
		t.Errorf("LayerEnd events = %d, want %d", got, n)
	}
	if sum := rec.SumCellOps(obs.KindLayerEnd); sum != m.CellOps {
		t.Errorf("Σ LayerEnd.CellOps = %d, want Meter.CellOps = %d", sum, m.CellOps)
	}
	serial := OptimalOrdering(tt, nil)
	if res.MinCost != serial.MinCost {
		t.Errorf("parallel traced MinCost = %d, serial = %d", res.MinCost, serial.MinCost)
	}
}

// TestTraceBnBCellOps checks the branch-and-bound invariant: expansion
// events carry exactly the cell ops the meter accumulates.
func TestTraceBnBCellOps(t *testing.T) {
	tt := traceFixture(t)
	rec := obs.NewRecorder()
	m := &Meter{}
	res := BranchAndBound(tt, &BnBOptions{Meter: m, Trace: rec})

	if got := rec.Count(obs.KindBnBExpand); got == 0 {
		t.Fatalf("no BnBExpand events")
	}
	if sum := rec.SumCellOps(obs.KindBnBExpand); sum != m.CellOps {
		t.Errorf("Σ BnBExpand.CellOps = %d, want Meter.CellOps = %d", sum, m.CellOps)
	}
	if got := rec.Count(obs.KindBnBBest); got == 0 {
		t.Errorf("no incumbent improvements recorded")
	}
	// The final incumbent event must carry the returned optimum.
	var last uint64
	for _, ev := range rec.Events() {
		if ev.Kind == obs.KindBnBBest {
			last = ev.Cost
		}
	}
	if last != res.MinCost {
		t.Errorf("last BnBBest cost = %d, want MinCost = %d", last, res.MinCost)
	}
}

// TestTraceDnC checks that divide-and-conquer emits split/merge pairs and
// quantum batches, and that its DP layer events account for the meter.
func TestTraceDnC(t *testing.T) {
	tt := traceFixture(t)
	rec := obs.NewRecorder()
	m := &Meter{}
	res := DivideAndConquer(tt, &DnCOptions{Meter: m, Trace: rec})

	splits := rec.Count(obs.KindDnCSplit)
	merges := rec.Count(obs.KindDnCMerge)
	if splits == 0 || merges == 0 {
		t.Fatalf("want ≥1 split and merge, got %d/%d", splits, merges)
	}
	if splits != merges {
		t.Errorf("splits (%d) != merges (%d)", splits, merges)
	}
	if got := rec.Count(obs.KindQuantumBatch); got != splits {
		t.Errorf("quantum batches = %d, want one per split = %d", got, splits)
	}
	if sum := rec.SumCellOps(obs.KindLayerEnd); sum != m.CellOps {
		t.Errorf("Σ LayerEnd.CellOps = %d, want Meter.CellOps = %d", sum, m.CellOps)
	}
	serial := OptimalOrdering(tt, nil)
	if res.MinCost != serial.MinCost {
		t.Errorf("dnc MinCost = %d, serial = %d", res.MinCost, serial.MinCost)
	}
}

// TestTraceShared checks the shared-forest DP layer contract.
func TestTraceShared(t *testing.T) {
	f := truthtable.FromFunc(4, func(x []bool) bool { return x[0] && x[1] || x[2] })
	g := truthtable.FromFunc(4, func(x []bool) bool { return x[1] != x[3] })
	rec := obs.NewRecorder()
	m := &Meter{}
	OptimalOrderingShared([]*truthtable.Table{f, g}, &SolveOptions{Meter: m, Trace: rec})
	if got := rec.Count(obs.KindLayerEnd); got != 4 {
		t.Errorf("LayerEnd events = %d, want 4", got)
	}
	if sum := rec.SumCellOps(obs.KindLayerEnd); sum != m.CellOps {
		t.Errorf("Σ LayerEnd.CellOps = %d, want Meter.CellOps = %d", sum, m.CellOps)
	}
}

// TestTraceParallelRace attaches a recording tracer to concurrent
// parallel runs; meaningful under `go test -race`.
func TestTraceParallelRace(t *testing.T) {
	tt := traceFixture(t)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := obs.NewRecorder()
			m := &Meter{}
			res := mustResult(OptimalOrderingParallel(nil, tt, &SolveOptions{Meter: m, Trace: rec, Workers: 4}))
			if res.MinCost == 0 || rec.Count(obs.KindLayerEnd) != tt.NumVars() {
				t.Errorf("traced parallel run inconsistent: cost %d, layers %d",
					res.MinCost, rec.Count(obs.KindLayerEnd))
			}
		}()
	}
	wg.Wait()
}

// TestTraceNilSafety runs every solver with a nil tracer and a nil meter —
// the zero-cost path must not panic anywhere.
func TestTraceNilSafety(t *testing.T) {
	tt := traceFixture(t)
	OptimalOrdering(tt, nil)
	mustResult(OptimalOrderingParallel(nil, tt, nil))
	BranchAndBound(tt, nil)
	DivideAndConquer(tt, nil)
	BruteForce(tt, nil)
	DivideAndConquerComposed(tt, &LadderOptions{Depth: 1})
}
