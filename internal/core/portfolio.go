package core

import (
	stdctx "context"
	"fmt"
	"runtime/pprof"
	"sort"
	"strconv"
	"sync"
	"time"

	"obddopt/internal/obs"
	"obddopt/internal/truthtable"
)

// This file is the portfolio engine and the named-solver registry behind
// the top-level Solve API. The portfolio races the two exact strategies
// with complementary cost profiles — the Friedman–Supowit dynamic program
// (predictable O*(3^n) work, no usable incumbent until it finishes) and
// branch-and-bound (unpredictable but often far cheaper when seeded with
// a tight bound, carries an incumbent throughout) — after a cheap
// heuristic phase whose incumbent both seeds the branch-and-bound bound
// and serves as the graceful-degradation answer when a deadline or budget
// stops the race before either lane proves optimality.

// SolveOptions is the option set shared by every registered solver. It is
// a superset of the per-algorithm option structs: fields irrelevant to a
// given solver (Workers for the serial DP, Seeder for anything but the
// portfolio) are ignored.
type SolveOptions struct {
	// Rule selects the diagram variant (OBDD or ZDD).
	Rule Rule
	// Meter, if non-nil, accumulates operation counts. The portfolio
	// gives each lane a private meter and merges them after all lanes
	// have joined, so the final counters aggregate the whole race.
	Meter *Meter
	// Trace, if non-nil, receives the solver's events; the portfolio
	// additionally emits lane_start / lane_result / race_won /
	// lane_canceled events. Implementations must be safe for concurrent
	// Emit calls (all of internal/obs's are).
	Trace obs.Tracer
	// Budget bounds the run's resources; the zero value is unlimited.
	// The portfolio applies the budget to each lane independently.
	Budget Budget
	// Workers is the goroutine count for the parallel DP lanes; 0 selects
	// GOMAXPROCS.
	Workers int
	// ShardBits overrides the work-stealing scheduler's shard granularity:
	// when positive, each popcount layer is split into shards of 2^ShardBits
	// ranks. 0 (the default) sizes shards automatically from the layer size
	// and worker count. Setting it also keeps the pipeline engaged at
	// Workers == 1, which scheduling tests use to exercise shard seams
	// without concurrency.
	ShardBits int
	// Pinned disables work stealing: each worker runs only shards it
	// claimed itself. Useful for isolating scheduling effects; throughput
	// is generally worse than the stealing default.
	Pinned bool
	// Seeder overrides the heuristic seeding phase of the portfolio; nil
	// selects DefaultSeeder.
	Seeder Seeder
}

func (o *SolveOptions) rule() Rule {
	if o == nil {
		return OBDD
	}
	return o.Rule
}

func (o *SolveOptions) meter() *Meter {
	if o == nil {
		return nil
	}
	return o.Meter
}

func (o *SolveOptions) trace() obs.Tracer {
	if o == nil {
		return nil
	}
	return o.Trace
}

func (o *SolveOptions) budget() Budget {
	if o == nil {
		return Budget{}
	}
	return o.Budget
}

func (o *SolveOptions) workers() int {
	if o == nil {
		return 0
	}
	return o.Workers
}

func (o *SolveOptions) shardBits() int {
	if o == nil {
		return 0
	}
	return o.ShardBits
}

func (o *SolveOptions) pinnedSchedule() bool {
	if o == nil {
		return false
	}
	return o.Pinned
}

// Seeder is a heuristic ordering pass: it returns an ordering of tt's
// variables, the diagram cost (nonterminals) under that ordering, and
// whether it produced anything. It must respect ctx — stopping early and
// returning its best-so-far — and must tolerate a nil tracer.
type Seeder func(ctx stdctx.Context, tt *truthtable.Table, rule Rule, tr obs.Tracer) (truthtable.Ordering, uint64, bool)

// DefaultSeeder is the heuristic phase the portfolio uses when
// SolveOptions.Seeder is nil. The heuristics package installs its
// Sift→Anneal pipeline here from an init function — a package hook in
// the database/sql-driver style, needed because heuristics imports core
// and core cannot import it back. A nil DefaultSeeder (heuristics not
// linked in) skips the seeding phase.
var DefaultSeeder Seeder

// Solver is a registered solving strategy behind one name of the Solve
// API. Implementations honor ctx and opts.Budget cooperatively and
// return ErrCanceled / ErrBudgetExceeded on early stops, with a non-nil
// *Result alongside the error when a usable incumbent exists.
type Solver func(ctx stdctx.Context, tt *truthtable.Table, opts *SolveOptions) (*Result, error)

var (
	solverMu  sync.RWMutex
	solverReg = make(map[string]Solver)
)

// RegisterSolver makes a solving strategy available under name (as used
// by Solve's WithSolver option and the CLIs' -solver flag). It panics if
// the name is empty, the solver nil, or the name already taken — the
// same contract as database/sql.Register.
func RegisterSolver(name string, s Solver) {
	solverMu.Lock()
	defer solverMu.Unlock()
	if name == "" || s == nil {
		panic("core: RegisterSolver with empty name or nil solver") //lint:allow nopanic database/sql-style registration contract: misregistration is a linker-time programmer error
	}
	if _, dup := solverReg[name]; dup {
		panic("core: RegisterSolver called twice for " + name) //lint:allow nopanic database/sql-style registration contract: misregistration is a linker-time programmer error
	}
	solverReg[name] = s
}

// LookupSolver returns the solver registered under name.
func LookupSolver(name string) (Solver, bool) {
	solverMu.RLock()
	defer solverMu.RUnlock()
	s, ok := solverReg[name]
	return s, ok
}

// SolverNames lists the registered solver names, sorted.
func SolverNames() []string {
	solverMu.RLock()
	defer solverMu.RUnlock()
	names := make([]string, 0, len(solverReg))
	for n := range solverReg {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func init() {
	RegisterSolver("fs", OptimalOrderingCtx)
	RegisterSolver("parallel", OptimalOrderingParallel)
	RegisterSolver("bnb", func(ctx stdctx.Context, tt *truthtable.Table, opts *SolveOptions) (*Result, error) {
		return BranchAndBoundCtx(ctx, tt, &BnBOptions{Rule: opts.rule(), Meter: opts.meter(), Trace: opts.trace(), Budget: opts.budget()})
	})
	RegisterSolver("dnc", func(ctx stdctx.Context, tt *truthtable.Table, opts *SolveOptions) (*Result, error) {
		return DivideAndConquerCtx(ctx, tt, &DnCOptions{Rule: opts.rule(), Meter: opts.meter(), Trace: opts.trace(), Budget: opts.budget()})
	})
	RegisterSolver("brute", func(ctx stdctx.Context, tt *truthtable.Table, opts *SolveOptions) (*Result, error) {
		return BruteForceCtx(ctx, tt, &BruteForceOptions{Rule: opts.rule(), Meter: opts.meter(), Budget: opts.budget(), Prune: true})
	})
	RegisterSolver("portfolio", Portfolio)
}

// parallelLaneThreshold is the variable count above which the portfolio's
// DP lane uses the multi-core dynamic program: below it the layers are
// too small for the fan-out to pay for goroutine coordination.
const parallelLaneThreshold = 12

// laneOutcome is one exact lane's final state.
type laneOutcome struct {
	name    string
	res     *Result
	err     error
	meter   *Meter
	elapsed time.Duration
}

// Portfolio is the registered "portfolio" solver: a heuristic phase
// (DefaultSeeder — Sift then simulated annealing) followed by a race
// between the Friedman–Supowit dynamic program (parallel above
// parallelLaneThreshold variables) and branch-and-bound seeded with the
// heuristic incumbent. The first lane to prove optimality wins and the
// loser is canceled. The returned cost is exact whenever err is nil —
// both lanes are exact algorithms, so the race only changes which proof
// arrives first, never the answer.
//
// On cancellation or budget exhaustion before either lane finishes, the
// heuristic incumbent (or the best incumbent of the branch-and-bound
// lane, whichever is better) is returned alongside the error, so callers
// degrade to a valid — merely unproven — ordering instead of nothing.
func Portfolio(ctx stdctx.Context, tt *truthtable.Table, opts *SolveOptions) (*Result, error) {
	rule, tr := opts.rule(), opts.trace()
	budget := opts.budget()
	n := tt.NumVars()
	start := time.Now()
	sp := obs.SpanFromContext(ctx)

	// Phase 1: heuristic seeding. Runs inline (it is polynomial-time and
	// brief next to the exact lanes) but under ctx, so a short deadline
	// still yields a best-so-far incumbent.
	seeder := DefaultSeeder
	if opts != nil && opts.Seeder != nil {
		seeder = opts.Seeder
	}
	var (
		incOrder truthtable.Ordering
		incCost  uint64
		haveInc  bool
	)
	if seeder != nil {
		if tr != nil {
			tr.Emit(obs.Event{Kind: obs.KindLaneStart, Lane: "heuristic"})
		}
		if sp != nil {
			sp.Event("lane_start:heuristic")
		}
		heurStart := time.Now()
		incOrder, incCost, haveInc = seeder(ctx, tt, rule, tr)
		if sp != nil {
			sp.Event("lane_result:heuristic")
		}
		if tr != nil {
			ev := obs.Event{Kind: obs.KindLaneResult, Lane: "heuristic", Elapsed: time.Since(heurStart)}
			if haveInc {
				ev.Cost = incCost
			}
			tr.Emit(ev)
		}
	}
	incumbent := func() *Result {
		if !haveInc {
			return nil
		}
		return finishResult(tt, nil, incOrder, incCost, rule, nil)
	}
	if ctx != nil && ctx.Err() != nil {
		return incumbent(), fmt.Errorf("%w: %v", ErrCanceled, ctx.Err())
	}

	// Phase 2: race the exact lanes. Each lane gets a private meter (so
	// worker accounting never races) and the same per-lane budget; the
	// first successful finisher cancels the other.
	raceCtx, cancel := stdctx.WithCancel(ctxOrBackground(ctx))
	defer cancel()

	dpName := "fs"
	if n > parallelLaneThreshold {
		dpName = "parallel"
	}
	lanes := []struct {
		name string
		run  func(stdctx.Context, *Meter) (*Result, error)
	}{
		{dpName, func(c stdctx.Context, m *Meter) (*Result, error) {
			laneOpts := &SolveOptions{
				Rule: rule, Meter: m, Trace: tr, Budget: budget,
				Workers: opts.workers(), ShardBits: opts.shardBits(), Pinned: opts.pinnedSchedule(),
			}
			if dpName == "parallel" {
				return OptimalOrderingParallel(c, tt, laneOpts)
			}
			return OptimalOrderingCtx(c, tt, laneOpts)
		}},
		{"bnb", func(c stdctx.Context, m *Meter) (*Result, error) {
			o := &BnBOptions{Rule: rule, Meter: m, Trace: tr, Budget: budget}
			if haveInc {
				// Seed one above the incumbent so a truly-optimal
				// incumbent is still rediscovered (and thereby proven)
				// rather than pruned away.
				o.InitialBound = incCost + 1
			}
			return BranchAndBoundCtx(c, tt, o)
		}},
	}

	results := make(chan laneOutcome, len(lanes))
	for _, lane := range lanes {
		lane := lane
		if tr != nil {
			tr.Emit(obs.Event{Kind: obs.KindLaneStart, Lane: lane.name})
		}
		if sp != nil {
			sp.Event("lane_start:" + lane.name)
		}
		// Each lane goroutine runs under pprof labels so a CPU profile of
		// a racing process attributes samples to the lane's solver, problem
		// size and rule rather than one undifferentiated Portfolio frame.
		labels := pprof.Labels("solver", lane.name, "n", strconv.Itoa(n), "rule", rule.String())
		go pprof.Do(raceCtx, labels, func(c stdctx.Context) {
			m := &Meter{}
			laneStart := time.Now()
			res, err := lane.run(c, m)
			results <- laneOutcome{name: lane.name, res: res, err: err, meter: m, elapsed: time.Since(laneStart)}
		})
	}

	var winner, loserInc *laneOutcome
	var firstErr error
	outcomes := make([]laneOutcome, 0, len(lanes))
	for range lanes {
		out := <-results
		outcomes = append(outcomes, out)
		// Per-lane distributions, recorded unconditionally (once per lane
		// per race — negligible next to the lane itself): wall time, cells
		// touched, and the lane's peak live-cell footprint.
		obs.Hist(obs.HistNameLaneWall, "lane", out.name).RecordDuration(out.elapsed)
		obs.Hist(obs.HistNameLaneCells, "lane", out.name).Record(out.meter.CellOps)
		obs.Hist(obs.HistNameLanePeak, "lane", out.name).Record(out.meter.PeakCells)
		if sp != nil {
			sp.Event("lane_done:" + out.name)
		}
		// A lane that died without a result (typically: canceled after the
		// race was decided) emits only lane_canceled below, not a
		// misleading zero-cost lane_result.
		if tr != nil && (out.err == nil || out.res != nil) {
			tr.Emit(obs.Event{Kind: obs.KindLaneResult, Lane: out.name, Cost: out.res.MinCost, Elapsed: out.elapsed})
		}
		switch {
		case out.err == nil:
			if winner == nil {
				w := out
				winner = &w
				if tr != nil {
					tr.Emit(obs.Event{Kind: obs.KindRaceWon, Lane: out.name, Cost: out.res.MinCost, Elapsed: time.Since(start)})
				}
				if sp != nil {
					sp.Event("race_won:" + out.name)
				}
				cancel()
			}
		default:
			if firstErr == nil {
				firstErr = out.err
			}
			if out.res != nil && (loserInc == nil || out.res.MinCost < loserInc.res.MinCost) {
				l := out
				loserInc = &l
			}
			if winner != nil && tr != nil {
				tr.Emit(obs.Event{Kind: obs.KindLaneCanceled, Lane: out.name})
			}
		}
	}

	// All lanes have joined; merging their private meters into the
	// caller's is now race-free.
	if m := opts.meter(); m != nil {
		for _, out := range outcomes {
			m.CellOps += out.meter.CellOps
			m.Compactions += out.meter.Compactions
			m.Evaluations += out.meter.Evaluations
			// Each lane frees everything it owns on both paths, so lane
			// LiveCells is 0 here; fold the lane's peak into the
			// caller's as if the lane had run on the caller's meter.
			if p := m.LiveCells + out.meter.PeakCells; p > m.PeakCells {
				m.PeakCells = p
			}
			m.LiveCells += out.meter.LiveCells
		}
	}

	if winner != nil {
		return winner.res, nil
	}
	// No lane finished: degrade to the best incumbent available — the
	// branch-and-bound lane's (exact search, so at least as good as its
	// seed) or the heuristic's.
	best := incumbent()
	if loserInc != nil && (best == nil || loserInc.res.MinCost < best.MinCost) {
		best = loserInc.res
	}
	return best, firstErr
}

// ctxOrBackground keeps nil-context callers working with the stdlib
// context tree (WithCancel panics on nil).
func ctxOrBackground(ctx stdctx.Context) stdctx.Context {
	if ctx == nil {
		return stdctx.Background() //lint:allow ctxcheckpoint sanctioned nil-context shim: WithCancel panics on nil, legacy callers pass nil
	}
	return ctx
}
