// Package core implements the exact optimal-variable-ordering algorithms of
// Friedman & Supowit (DAC 1987 / IEEE TC 1990) and their generalizations:
//
//   - FS, the O*(3^n) subset dynamic program (Theorem 5 of the restatement),
//   - FS*, the composable variant that extends a partial solution FS(I) to
//     FS(I ⊔ K) for all K ⊆ J (Lemma 8),
//   - BruteForce, the trivial O*(n!·2^n) baseline the paper improves on,
//   - OptOBDD(k, α), the divide-and-conquer variant driven by (simulated)
//     quantum minimum finding (Lemma 9 and Theorems 10/13).
//
// All algorithms run on truth tables and share one primitive: table
// compaction (§2.3.2), which absorbs one variable into the solved bottom
// block of levels while counting the nodes the corresponding OBDD level
// needs. Compaction supports three node-elimination rules: OBDD (Shannon),
// ZDD (zero-suppressed, Remark 2's two-line modification), and MTBDD
// (multi-terminal, also Remark 2).
package core

import (
	"fmt"

	"obddopt/internal/bitops"
	"obddopt/internal/truthtable"
)

// Rule selects the reduction rule applied during table compaction, i.e.
// which decision-diagram variant is being minimized.
type Rule int

const (
	// OBDD applies the standard reduction: a node whose 0- and 1-child
	// coincide is skipped (the function does not depend on the level's
	// variable).
	OBDD Rule = iota
	// ZDD applies the zero-suppressed rule: a node whose 1-child is the
	// false terminal is skipped. This is the two-line modification of
	// Remark 2 / Appendix D.
	ZDD
)

// String returns the conventional name of the rule.
func (r Rule) String() string {
	switch r {
	case OBDD:
		return "OBDD"
	case ZDD:
		return "ZDD"
	default:
		return fmt.Sprintf("Rule(%d)", int(r))
	}
}

// MarshalJSON renders the rule as its conventional name, so run reports
// read "OBDD"/"ZDD" instead of enum integers.
func (r Rule) MarshalJSON() ([]byte, error) {
	return []byte(`"` + r.String() + `"`), nil
}

// UnmarshalJSON accepts the conventional name (or a bare integer, for
// compatibility with numerically encoded reports).
func (r *Rule) UnmarshalJSON(data []byte) error {
	switch string(data) {
	case `"OBDD"`, "0":
		*r = OBDD
	case `"ZDD"`, "1":
		*r = ZDD
	default:
		return fmt.Errorf("core: unknown rule %s", data)
	}
	return nil
}

// Meter accumulates the operation counts the complexity claims are stated
// in. CellOps counts table-compaction cell visits — the unit in which the
// 3^n bound of Theorem 5 is measured. A nil *Meter is accepted everywhere
// and disables metering. The JSON tags define the meter section of the
// CLI `-json` run reports (see internal/obs).
type Meter struct {
	// CellOps counts individual table cells visited by compaction; the
	// classical time bound is Σ_k k·C(n,k)·2^{n−k} ≤ n·3^{n−1} cell ops.
	CellOps uint64 `json:"cell_ops"`
	// Compactions counts COMPACT invocations (DP transitions).
	Compactions uint64 `json:"compactions"`
	// LiveCells tracks the current number of table cells held by the DP;
	// PeakCells its maximum — the space bound of Remark 1.
	LiveCells uint64 `json:"live_cells"`
	PeakCells uint64 `json:"peak_cells"`
	// Evaluations counts cost-oracle evaluations performed by search
	// drivers (brute force, minimum finding).
	Evaluations uint64 `json:"evaluations"`
}

// Reset zeroes every counter, so one Meter can be reused across runs
// (benchmark loops, batched CLI invocations).
func (m *Meter) Reset() { *m = Meter{} }

func (m *Meter) addCells(n uint64) {
	if m == nil {
		return
	}
	m.CellOps += n
	m.Compactions++
}

func (m *Meter) alloc(cells uint64) {
	if m == nil {
		return
	}
	m.LiveCells += cells
	if m.LiveCells > m.PeakCells {
		m.PeakCells = m.LiveCells
	}
}

func (m *Meter) free(cells uint64) {
	if m == nil {
		return
	}
	if cells > m.LiveCells {
		m.LiveCells = 0
		return
	}
	m.LiveCells -= cells
}

// fsContext is the quadruple FS(⟨I₁, …, I_m⟩) of the papers minus the
// explicit NODE set: a partially absorbed problem state. The absorbed
// variables occupy the bottom |absorbed| levels in some optimal order; the
// table maps each assignment of the free (unabsorbed) variables to the
// canonical ID of the corresponding subfunction's node.
//
// Node IDs: 0 … nTerm−1 are terminal IDs (false=0, true=1 for Boolean
// rules); nonterminal nodes are numbered from nTerm upward in creation
// order, so nextID = nTerm + cost at all times.
type fsContext struct {
	n     int         // total number of variables of f
	free  bitops.Mask // variables not yet absorbed
	table []uint32    // 2^{|free|} cells: node ID per free-variable assignment
	cost  uint64      // MINCOST: nonterminal nodes in the absorbed levels
	nTerm uint32      // number of terminal IDs
}

// nextID returns the ID the next created node will receive.
func (c *fsContext) nextID() uint32 { return c.nTerm + uint32(c.cost) }

// clone returns a deep copy of the context (table included).
func (c *fsContext) clone() *fsContext {
	t := make([]uint32, len(c.table))
	copy(t, c.table)
	return &fsContext{n: c.n, free: c.free, table: t, cost: c.cost, nTerm: c.nTerm}
}

// cells returns the table length as a uint64.
func (c *fsContext) cells() uint64 { return uint64(len(c.table)) }

// baseContext builds the initial context FS(∅) from a Boolean truth table:
// the table is simply the truth table with terminal IDs 0/1 per cell.
func baseContext(tt *truthtable.Table) *fsContext {
	n := tt.NumVars()
	table := make([]uint32, tt.Size())
	for idx := uint64(0); idx < tt.Size(); idx++ {
		if tt.Bit(idx) {
			table[idx] = 1
		}
	}
	return &fsContext{n: n, free: bitops.FullMask(n), table: table, cost: 0, nTerm: 2}
}

// baseContextMulti builds the initial context from a multi-valued table
// (MTBDD minimization, Remark 2). Terminal IDs are the dense value codes.
func baseContextMulti(mt *truthtable.MultiTable) (*fsContext, []int) {
	codes, terminals := mt.Dense()
	n := mt.NumVars()
	return &fsContext{
		n:     n,
		free:  bitops.FullMask(n),
		table: codes,
		cost:  0,
		nTerm: uint32(len(terminals)),
	}, terminals
}

// pairKey packs a (u0, u1) child pair into a map key. Node IDs stay far
// below 2^32 (they are bounded by table size ≤ 2^30 plus terminals).
func pairKey(u0, u1 uint32) uint64 { return uint64(u0) | uint64(u1)<<32 }

// compact performs table compaction with respect to variable v (§2.3.2):
// it absorbs v into the solved bottom block, producing the context for
// (I ⊔ {v}) from the context for I. The returned width is the number of
// nodes the new level needs, i.e. Cost_v(f, π_(I,v)) — by Lemma 3 this is
// independent of the order chosen inside I.
//
// Node uniqueness is keyed per level: two cells of the result receive the
// same ID iff their (u0, u1) child pairs coincide, which — because the new
// nodes all test the same variable v — is exactly the (var, u0, u1) triple
// equality the NODE set of the papers encodes. Deduplicating on (u0, u1)
// across levels would wrongly merge nodes testing different variables that
// happen to share a child pair (see DESIGN.md).
//
// The input context is not modified.
func compact(c *fsContext, v int, rule Rule, m *Meter) (next *fsContext, width uint64) {
	if !c.free.Has(v) {
		panic(fmt.Sprintf("core: compact on non-free variable %d (free %#x)", v, uint64(c.free))) //lint:allow nopanic internal invariant: compacting a non-free variable is a DP-driver bug, unreachable via the public API
	}
	pos := bitops.RelativePosition(c.free, v)
	newFree := c.free.Without(v)
	size := uint64(len(c.table)) / 2
	table := make([]uint32, size)
	m.alloc(size) //lint:allow meterbalance ownership of the compacted table transfers to the caller, which frees it (see runDP)

	dedup := make(map[uint64]uint32)
	id := c.nextID()
	for idx := uint64(0); idx < size; idx++ {
		u0 := c.table[bitops.SpliceIndex(idx, pos, 0)]
		u1 := c.table[bitops.SpliceIndex(idx, pos, 1)]
		var skip bool
		switch rule {
		case OBDD:
			skip = u0 == u1
		case ZDD:
			skip = u1 == 0
		default:
			panic("core: unknown rule") //lint:allow nopanic internal invariant: Rule enum is exhaustive; a new rule must extend this switch
		}
		if skip {
			table[idx] = u0
			continue
		}
		key := pairKey(u0, u1)
		if u, ok := dedup[key]; ok {
			table[idx] = u
			continue
		}
		dedup[key] = id
		table[idx] = id
		id++
		width++
	}
	m.addCells(size)
	return &fsContext{
		n:     c.n,
		free:  newFree,
		table: table,
		cost:  c.cost + width,
		nTerm: c.nTerm,
	}, width
}

// profileAlong absorbs the free variables of c in the order given
// (bottom-up) and returns the width of each produced level. It is the
// Cost_j evaluator used for brute force, heuristics and verification.
// order must list exactly the free variables of c.
func profileAlong(c *fsContext, order []int, rule Rule, m *Meter) (widths []uint64, final *fsContext) {
	cur := c
	widths = make([]uint64, 0, len(order))
	for _, v := range order {
		next, w := compact(cur, v, rule, m)
		if cur != c {
			m.free(cur.cells())
		}
		cur = next
		widths = append(widths, w)
	}
	return widths, cur
}
