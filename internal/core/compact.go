// Package core implements the exact optimal-variable-ordering algorithms of
// Friedman & Supowit (DAC 1987 / IEEE TC 1990) and their generalizations:
//
//   - FS, the O*(3^n) subset dynamic program (Theorem 5 of the restatement),
//   - FS*, the composable variant that extends a partial solution FS(I) to
//     FS(I ⊔ K) for all K ⊆ J (Lemma 8),
//   - BruteForce, the trivial O*(n!·2^n) baseline the paper improves on,
//   - OptOBDD(k, α), the divide-and-conquer variant driven by (simulated)
//     quantum minimum finding (Lemma 9 and Theorems 10/13).
//
// All algorithms run on truth tables and share one primitive: table
// compaction (§2.3.2), which absorbs one variable into the solved bottom
// block of levels while counting the nodes the corresponding OBDD level
// needs. Compaction supports three node-elimination rules: OBDD (Shannon),
// ZDD (zero-suppressed, Remark 2's two-line modification), and MTBDD
// (multi-terminal, also Remark 2).
//
// Storage: every table is a flat []uint32 of 2^{|free|} cells. The hot
// paths never allocate tables through the garbage collector — they draw
// dirty power-of-two blocks from a per-goroutine workspace (a slab arena
// plus a reusable dedup scratch, see internal/core/arena) and return them
// when a candidate is dropped or a layer retires. The Meter's cell
// accounting (alloc/free) is kept alongside and is what bddlint's
// meterbalance analyzer audits; arena recycling is invisible to it.
package core

import (
	"fmt"
	"sync"

	"obddopt/internal/bitops"
	"obddopt/internal/core/arena"
	"obddopt/internal/truthtable"
)

// Meter accumulates the operation counts the complexity claims are stated
// in. CellOps counts table-compaction cell visits — the unit in which the
// 3^n bound of Theorem 5 is measured. A nil *Meter is accepted everywhere
// and disables metering. The JSON tags define the meter section of the
// CLI `-json` run reports (see internal/obs).
type Meter struct {
	// CellOps counts individual table cells visited by compaction; the
	// classical time bound is Σ_k k·C(n,k)·2^{n−k} ≤ n·3^{n−1} cell ops.
	CellOps uint64 `json:"cell_ops"`
	// Compactions counts COMPACT invocations (DP transitions).
	Compactions uint64 `json:"compactions"`
	// LiveCells tracks the current number of table cells held by the DP;
	// PeakCells its maximum — the space bound of Remark 1.
	LiveCells uint64 `json:"live_cells"`
	PeakCells uint64 `json:"peak_cells"`
	// Evaluations counts cost-oracle evaluations performed by search
	// drivers (brute force, minimum finding).
	Evaluations uint64 `json:"evaluations"`
}

// Reset zeroes every counter, so one Meter can be reused across runs
// (benchmark loops, batched CLI invocations).
func (m *Meter) Reset() { *m = Meter{} }

func (m *Meter) addCells(n uint64) {
	if m == nil {
		return
	}
	m.CellOps += n
	m.Compactions++
}

func (m *Meter) alloc(cells uint64) {
	if m == nil {
		return
	}
	m.LiveCells += cells
	if m.LiveCells > m.PeakCells {
		m.PeakCells = m.LiveCells
	}
}

func (m *Meter) free(cells uint64) {
	if m == nil {
		return
	}
	if cells > m.LiveCells {
		m.LiveCells = 0
		return
	}
	m.LiveCells -= cells
}

// workspace bundles the goroutine-local scratch of one solver run: the
// slab arena the table blocks are drawn from and the open-addressed dedup
// table compaction keys child pairs in. Workspaces are pooled across runs
// so consecutive Solve calls reuse the same warmed slabs; they carry no
// run state (arena blocks are dirty by contract, the dedup scratch is
// reset per compaction), so reuse cannot bleed results between runs.
//
// A workspace must not be shared between goroutines; the parallel solver
// acquires one per worker.
type workspace struct {
	ar *arena.Arena
	dd arena.Dedup
}

var wsPool = sync.Pool{New: func() any { return &workspace{ar: new(arena.Arena)} }}

// acquireWorkspace returns a workspace for one run (goroutine-local use).
func acquireWorkspace() *workspace { return wsPool.Get().(*workspace) }

// release returns the workspace — slabs included — to the process-wide
// pool. The caller must not use it afterwards; blocks it handed out that
// were not Put back are simply never recycled (see arena.Arena).
func (ws *workspace) release() { wsPool.Put(ws) }

// recycle returns a context's table block to the workspace's arena. It is
// the storage-side half of releasing a context; the metering-side half
// (m.free) stays at the call site where the meterbalance analyzer can see
// it.
func (ws *workspace) recycle(c *fsContext) {
	ws.ar.PutU32(c.table)
	c.table = nil
}

// fsContext is the quadruple FS(⟨I₁, …, I_m⟩) of the papers minus the
// explicit NODE set: a partially absorbed problem state. The absorbed
// variables occupy the bottom |absorbed| levels in some optimal order; the
// table maps each assignment of the free (unabsorbed) variables to the
// canonical ID of the corresponding subfunction's node.
//
// Node IDs: 0 … nTerm−1 are terminal IDs (false=0, true=1 for Boolean
// rules); nonterminal nodes are numbered from nTerm upward in creation
// order, so nextID = nTerm + cost at all times.
type fsContext struct {
	n     int         // total number of variables of f
	free  bitops.Mask // variables not yet absorbed
	table []uint32    // 2^{|free|} cells: node ID per free-variable assignment
	cost  uint64      // MINCOST: nonterminal nodes in the absorbed levels
	nTerm uint32      // number of terminal IDs
}

// nextID returns the ID the next created node will receive.
func (c *fsContext) nextID() uint32 { return c.nTerm + uint32(c.cost) }

// clone returns a deep copy of the context. The copy's table is a plain
// heap slice independent of any arena, so it outlives every workspace.
func (c *fsContext) clone() *fsContext {
	t := make([]uint32, len(c.table))
	copy(t, c.table)
	return &fsContext{n: c.n, free: c.free, table: t, cost: c.cost, nTerm: c.nTerm}
}

// cells returns the table length as a uint64.
func (c *fsContext) cells() uint64 { return uint64(len(c.table)) }

// baseContext builds the initial context FS(∅) from a Boolean truth table:
// the table is simply the truth table with terminal IDs 0/1 per cell.
func baseContext(tt *truthtable.Table) *fsContext {
	n := tt.NumVars()
	table := make([]uint32, tt.Size())
	for idx := uint64(0); idx < tt.Size(); idx++ {
		if tt.Bit(idx) {
			table[idx] = 1
		}
	}
	return &fsContext{n: n, free: bitops.FullMask(n), table: table, cost: 0, nTerm: 2}
}

// baseContextMulti builds the initial context from a multi-valued table
// (MTBDD minimization, Remark 2). Terminal IDs are the dense value codes.
func baseContextMulti(mt *truthtable.MultiTable) (*fsContext, []int) {
	codes, terminals := mt.Dense()
	n := mt.NumVars()
	return &fsContext{
		n:     n,
		free:  bitops.FullMask(n),
		table: codes,
		cost:  0,
		nTerm: uint32(len(terminals)),
	}, terminals
}

// pairKey packs a (u0, u1) child pair into a dedup key. Node IDs stay far
// below 2^32 (they are bounded by table size ≤ 2^30 plus terminals). The
// zero key — pair (0, 0) — is never produced for a kept node under any
// rule (OBDD/MTBDD skip u0 == u1, ZDD skips u1 == 0), which is what lets
// arena.Dedup use it as the empty-slot sentinel.
func pairKey(u0, u1 uint32) uint64 { return uint64(u0) | uint64(u1)<<32 }

// compactInto is the compaction kernel: it writes the table that absorbs
// the free-variable bit position pos of src into dst (len(dst) must be
// len(src)/2), assigning fresh node IDs from id0 upward in ascending dst
// index order, and returns the number of fresh nodes (the level width).
// The caller must Reset dd before the first call of a (possibly
// multi-root) compaction; IDs continue across calls sharing one dd.
//
// Layout: absorbing bit pos pairs src cells at stride 2^(pos+1) — each
// stride block is a contiguous run of 2^pos u0-cells followed by the
// matching run of u1-cells. The kernel walks those runs sequentially
// (three linear streams, no per-cell index splicing) and tests eight
// lanes at a time for the skip condition: a chunk whose lanes all skip is
// bulk-copied without touching the dedup table, which is the common case
// for structured functions whose subfunctions collapse early.
func compactInto(dst, src []uint32, pos uint, rule Rule, id0 uint32, dd *arena.Dedup) (width uint64) {
	if dd.Compact32() {
		switch rule {
		case OBDD:
			return compactOBDD32(dst, src, pos, id0, dd)
		case ZDD:
			return compactZDD32(dst, src, pos, id0, dd)
		default:
			panic("core: unknown rule") //lint:allow nopanic internal invariant: Rule enum is exhaustive; a new rule must extend this switch
		}
	}
	half := uint64(1) << pos
	stride := half * 2
	id := id0
	di := uint64(0)
	switch rule {
	case OBDD:
		for base := uint64(0); base < uint64(len(src)); base += stride {
			u0s := src[base : base+half : base+half]
			u1s := src[base+half : base+stride : base+stride]
			j := uint64(0)
			for ; j+8 <= half; j += 8 {
				// Word-parallel skip test: XOR-OR over eight lanes is zero
				// iff every lane has u0 == u1 (all skips).
				if (u0s[j]^u1s[j])|(u0s[j+1]^u1s[j+1])|
					(u0s[j+2]^u1s[j+2])|(u0s[j+3]^u1s[j+3])|
					(u0s[j+4]^u1s[j+4])|(u0s[j+5]^u1s[j+5])|
					(u0s[j+6]^u1s[j+6])|(u0s[j+7]^u1s[j+7]) == 0 {
					copy(dst[di:di+8], u0s[j:j+8])
					di += 8
					continue
				}
				for l := j; l < j+8; l++ {
					u0, u1 := u0s[l], u1s[l]
					if u0 == u1 {
						dst[di] = u0
						di++
						continue
					}
					if got, fresh := dd.FindOrAssign(pairKey(u0, u1), id); fresh {
						dst[di] = id
						id++
						width++
					} else {
						dst[di] = got
					}
					di++
				}
			}
			for ; j < half; j++ {
				u0, u1 := u0s[j], u1s[j]
				if u0 == u1 {
					dst[di] = u0
					di++
					continue
				}
				if got, fresh := dd.FindOrAssign(pairKey(u0, u1), id); fresh {
					dst[di] = id
					id++
					width++
				} else {
					dst[di] = got
				}
				di++
			}
		}
	case ZDD:
		for base := uint64(0); base < uint64(len(src)); base += stride {
			u0s := src[base : base+half : base+half]
			u1s := src[base+half : base+stride : base+stride]
			j := uint64(0)
			for ; j+8 <= half; j += 8 {
				// All eight lanes skip iff every u1 is the false terminal.
				if u1s[j]|u1s[j+1]|u1s[j+2]|u1s[j+3]|
					u1s[j+4]|u1s[j+5]|u1s[j+6]|u1s[j+7] == 0 {
					copy(dst[di:di+8], u0s[j:j+8])
					di += 8
					continue
				}
				for l := j; l < j+8; l++ {
					u0, u1 := u0s[l], u1s[l]
					if u1 == 0 {
						dst[di] = u0
						di++
						continue
					}
					if got, fresh := dd.FindOrAssign(pairKey(u0, u1), id); fresh {
						dst[di] = id
						id++
						width++
					} else {
						dst[di] = got
					}
					di++
				}
			}
			for ; j < half; j++ {
				u0, u1 := u0s[j], u1s[j]
				if u1 == 0 {
					dst[di] = u0
					di++
					continue
				}
				if got, fresh := dd.FindOrAssign(pairKey(u0, u1), id); fresh {
					dst[di] = id
					id++
					width++
				} else {
					dst[di] = got
				}
				di++
			}
		}
	default:
		panic("core: unknown rule") //lint:allow nopanic internal invariant: Rule enum is exhaustive; a new rule must extend this switch
	}
	return width
}

// resetDedup prepares ws.dd for a compaction of expect insertions whose
// first fresh ID is id0, selecting the packed 32-bit probe layout when
// every ID the compaction can meet provably fits in 16 bits (IDs already
// in the source table are below id0 by construction, fresh ones stay
// below id0 + expect). The threshold is exact, not heuristic: crossing
// it falls back to the wide layout with identical results.
func resetDedup(dd *arena.Dedup, expect uint64, id0 uint32) {
	if uint64(id0)+expect <= 1<<16 {
		dd.Reset32(expect)
	} else {
		dd.Reset(expect)
	}
}

// compactOBDD32 is the OBDD compaction kernel for the packed 32-bit
// dedup layout (see Dedup.Reset32): the (u0, u1) pair packs into a
// 32-bit key sharing one slot with its assigned ID, so the probe loop is
// one load per hit and one store per miss. The probe is hand-inlined —
// keeping the slot array, shift and mask in registers across the cell
// loop is worth ~1.5x end to end over calling through the Dedup methods.
// IDs are assigned in ascending dst order exactly like the wide kernel,
// so the produced tables are bit-identical.
func compactOBDD32(dst, src []uint32, pos uint, id0 uint32, dd *arena.Dedup) (width uint64) {
	slots, shift := dd.Slots32()
	mask := uint64(len(slots) - 1)
	half := uint64(1) << pos
	stride := half * 2
	id := id0
	di := uint64(0)
	for base := uint64(0); base < uint64(len(src)); base += stride {
		u0s := src[base : base+half : base+half]
		u1s := src[base+half : base+stride : base+stride]
		j := uint64(0)
		for ; j+8 <= half; j += 8 {
			// Word-parallel skip test: XOR-OR over eight lanes is zero
			// iff every lane has u0 == u1 (all skips).
			if (u0s[j]^u1s[j])|(u0s[j+1]^u1s[j+1])|
				(u0s[j+2]^u1s[j+2])|(u0s[j+3]^u1s[j+3])|
				(u0s[j+4]^u1s[j+4])|(u0s[j+5]^u1s[j+5])|
				(u0s[j+6]^u1s[j+6])|(u0s[j+7]^u1s[j+7]) == 0 {
				copy(dst[di:di+8], u0s[j:j+8])
				di += 8
				continue
			}
			for l := j; l < j+8; l++ {
				u0, u1 := u0s[l], u1s[l]
				if u0 == u1 {
					dst[di] = u0
					di++
					continue
				}
				key := u0 | u1<<16
				slot := ((uint64(key) * 0x9e3779b97f4a7c15) >> shift) & mask
				for { //lint:allow ctxcheckpoint linear probe over a table Reset32 sizes to ≥ 2x the insertions, so an empty slot is always reached within the table length

					s := slots[slot]
					if uint32(s) == key {
						dst[di] = uint32(s >> 32)
						break
					}
					if s == 0 {
						slots[slot] = uint64(key) | uint64(id)<<32
						dst[di] = id
						id++
						width++
						break
					}
					slot = (slot + 1) & mask
				}
				di++
			}
		}
		for ; j < half; j++ {
			u0, u1 := u0s[j], u1s[j]
			if u0 == u1 {
				dst[di] = u0
				di++
				continue
			}
			key := u0 | u1<<16
			slot := ((uint64(key) * 0x9e3779b97f4a7c15) >> shift) & mask
			for { //lint:allow ctxcheckpoint linear probe over a table Reset32 sizes to ≥ 2x the insertions, so an empty slot is always reached within the table length

				s := slots[slot]
				if uint32(s) == key {
					dst[di] = uint32(s >> 32)
					break
				}
				if s == 0 {
					slots[slot] = uint64(key) | uint64(id)<<32
					dst[di] = id
					id++
					width++
					break
				}
				slot = (slot + 1) & mask
			}
			di++
		}
	}
	return width
}

// compactZDD32 is compactOBDD32's ZDD twin: the skip condition is a zero
// 1-child instead of equal children.
func compactZDD32(dst, src []uint32, pos uint, id0 uint32, dd *arena.Dedup) (width uint64) {
	slots, shift := dd.Slots32()
	mask := uint64(len(slots) - 1)
	half := uint64(1) << pos
	stride := half * 2
	id := id0
	di := uint64(0)
	for base := uint64(0); base < uint64(len(src)); base += stride {
		u0s := src[base : base+half : base+half]
		u1s := src[base+half : base+stride : base+stride]
		j := uint64(0)
		for ; j+8 <= half; j += 8 {
			// All eight lanes skip iff every u1 is the false terminal.
			if u1s[j]|u1s[j+1]|u1s[j+2]|u1s[j+3]|
				u1s[j+4]|u1s[j+5]|u1s[j+6]|u1s[j+7] == 0 {
				copy(dst[di:di+8], u0s[j:j+8])
				di += 8
				continue
			}
			for l := j; l < j+8; l++ {
				u0, u1 := u0s[l], u1s[l]
				if u1 == 0 {
					dst[di] = u0
					di++
					continue
				}
				key := u0 | u1<<16
				slot := ((uint64(key) * 0x9e3779b97f4a7c15) >> shift) & mask
				for { //lint:allow ctxcheckpoint linear probe over a table Reset32 sizes to ≥ 2x the insertions, so an empty slot is always reached within the table length

					s := slots[slot]
					if uint32(s) == key {
						dst[di] = uint32(s >> 32)
						break
					}
					if s == 0 {
						slots[slot] = uint64(key) | uint64(id)<<32
						dst[di] = id
						id++
						width++
						break
					}
					slot = (slot + 1) & mask
				}
				di++
			}
		}
		for ; j < half; j++ {
			u0, u1 := u0s[j], u1s[j]
			if u1 == 0 {
				dst[di] = u0
				di++
				continue
			}
			key := u0 | u1<<16
			slot := ((uint64(key) * 0x9e3779b97f4a7c15) >> shift) & mask
			for { //lint:allow ctxcheckpoint linear probe over a table Reset32 sizes to ≥ 2x the insertions, so an empty slot is always reached within the table length

				s := slots[slot]
				if uint32(s) == key {
					dst[di] = uint32(s >> 32)
					break
				}
				if s == 0 {
					slots[slot] = uint64(key) | uint64(id)<<32
					dst[di] = id
					id++
					width++
					break
				}
				slot = (slot + 1) & mask
			}
			di++
		}
	}
	return width
}

// compact performs table compaction with respect to variable v (§2.3.2):
// it absorbs v into the solved bottom block, producing the context for
// (I ⊔ {v}) from the context for I. The returned width is the number of
// nodes the new level needs, i.e. Cost_v(f, π_(I,v)) — by Lemma 3 this is
// independent of the order chosen inside I.
//
// Node uniqueness is keyed per level: two cells of the result receive the
// same ID iff their (u0, u1) child pairs coincide, which — because the new
// nodes all test the same variable v — is exactly the (var, u0, u1) triple
// equality the NODE set of the papers encodes. Deduplicating on (u0, u1)
// across levels would wrongly merge nodes testing different variables that
// happen to share a child pair (see DESIGN.md).
//
// The input context is not modified. The result's table is drawn from
// ws's arena; the caller owns it and returns it with ws.recycle (plus the
// matching m.free) when done.
func compact(c *fsContext, v int, rule Rule, m *Meter, ws *workspace) (next *fsContext, width uint64) {
	if !c.free.Has(v) {
		panic(fmt.Sprintf("core: compact on non-free variable %d (free %#x)", v, uint64(c.free))) //lint:allow nopanic internal invariant: compacting a non-free variable is a DP-driver bug, unreachable via the public API
	}
	pos := bitops.RelativePosition(c.free, v)
	size := uint64(len(c.table)) / 2
	table := ws.ar.GetU32(size)
	m.alloc(size) // ownership transfers via the returned context; proven by meterbalance's carrier-return rule
	resetDedup(&ws.dd, size, c.nextID())
	width = compactInto(table, c.table, pos, rule, c.nextID(), &ws.dd)
	m.addCells(size)
	return &fsContext{
		n:     c.n,
		free:  c.free.Without(v),
		table: table,
		cost:  c.cost + width,
		nTerm: c.nTerm,
	}, width
}

// profileAlong absorbs the free variables of c in the order given
// (bottom-up) and returns the width of each produced level. It is the
// Cost_j evaluator used for brute force, heuristics and verification.
// order must list exactly the free variables of c. The returned final
// context's table is a fresh block the caller may free but not recycle.
func profileAlong(c *fsContext, order []int, rule Rule, m *Meter) (widths []uint64, final *fsContext) {
	ws := acquireWorkspace()
	cur := c
	widths = make([]uint64, 0, len(order))
	for _, v := range order {
		next, w := compact(cur, v, rule, m, ws)
		if cur != c {
			m.free(cur.cells())
			ws.recycle(cur)
		}
		cur = next
		widths = append(widths, w)
	}
	ws.release()
	return widths, cur
}
