package core

import (
	stdctx "context"
	"runtime"
	"sort"
	"sync"
	"time"

	"obddopt/internal/bitops"
	"obddopt/internal/obs"
	"obddopt/internal/truthtable"
)

// OptimalOrderingParallel is OptimalOrdering with each DP layer fanned out
// over a worker pool (opts.Workers goroutines; 0 selects GOMAXPROCS): the
// transitions of one layer are independent (subset I's candidates read
// only layer k−1), so workers process disjoint slices of the previous
// layer and merge their partial next layers deterministically. Results
// are bit-identical to the serial algorithm, including tie-breaking.
//
// Meter updates are merged once per layer, not per compaction, so
// LiveCells/PeakCells are layer-granular approximations of the serial
// meter; trace events are layer-granular and emitted only from the
// coordinating goroutine. A budget is enforced at layer granularity for
// MaxCells and transition granularity for MaxNodes.
func OptimalOrderingParallel(tt *truthtable.Table, opts *SolveOptions) *Result {
	return mustResult(OptimalOrderingParallelCtx(nil, tt, opts))
}

// OptimalOrderingParallelCtx is OptimalOrderingParallel under a context
// and resource budget. Workers poll the context once per previous-layer
// subset, so a cancellation stops the fan-out well inside one layer; the
// coordinator then releases every table produced so far and returns
// ErrCanceled / ErrBudgetExceeded with a nil Result (the DP holds no
// incumbent before it completes).
func OptimalOrderingParallelCtx(ctx stdctx.Context, tt *truthtable.Table, opts *SolveOptions) (*Result, error) {
	rule, tr, budget := opts.rule(), opts.trace(), opts.budget()
	meter := meterFor(opts.meter(), budget)
	workers := opts.workers()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := tt.NumVars()
	if workers < 1 {
		workers = 1
	}
	if n <= 2 || workers == 1 {
		return OptimalOrderingCtx(ctx, tt, &SolveOptions{Rule: rule, Meter: meter, Trace: tr, Budget: budget})
	}
	lim := newLimiter(ctx, budget, meter)
	obs.Metrics.RunsStarted.Inc()

	// One workspace per worker, reused across every layer of the run and
	// returned to the pool only after all goroutines have joined — a
	// worker's arena must never be visible to another goroutine while the
	// coordinator still recycles dropped candidate blocks into it.
	wss := make([]*workspace, workers)
	for w := range wss {
		wss[w] = acquireWorkspace()
	}
	defer func() {
		for _, ws := range wss {
			ws.release()
		}
	}()

	base := baseContext(tt)
	meter.alloc(base.cells())
	bestLast := make(map[bitops.Mask]int)
	layer := map[bitops.Mask]*fsContext{0: base}

	// releaseLayer returns the current layer's tables to the meter and its
	// blocks to an arena (the caller-owned base context excluded); used on
	// both the normal per-layer hand-over and the abort path. It runs only
	// from the coordinator after wg.Wait, so recycling into wss[0] never
	// races with that worker.
	releaseLayer := func() {
		for m, c := range layer {
			if m != 0 || c != base {
				meter.free(c.cells())
				wss[0].recycle(c)
			}
		}
	}

	type cand struct {
		mask bitops.Mask
		v    int
		ctx  *fsContext
		ws   *workspace // the producing worker's workspace, for recycling
	}
	for k := 1; k <= n; k++ {
		var layerStart time.Time
		if tr != nil {
			layerStart = time.Now()
			tr.Emit(obs.Event{Kind: obs.KindLayerStart, K: k, Subsets: len(layer)})
		}
		// Snapshot the previous layer into a deterministic work list.
		prev := make([]bitops.Mask, 0, len(layer))
		for m := range layer {
			prev = append(prev, m)
		}
		sort.Slice(prev, func(i, j int) bool { return prev[i] < prev[j] })

		results := make([][]cand, workers)
		meters := make([]*Meter, workers)
		obs.Metrics.WorkerSpawns.Add(uint64(workers))
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				var local []cand
				lm := &Meter{}
				for i := w; i < len(prev); i += workers {
					// Cooperative checkpoint: ctx polling is safe from
					// any goroutine; budget accounting stays with the
					// coordinator.
					if lim.stopped() {
						break
					}
					prevMask := prev[i]
					prevCtx := layer[prevMask]
					for v := 0; v < n; v++ {
						if prevMask.Has(v) {
							continue
						}
						c, _ := compact(prevCtx, v, rule, lm, wss[w])
						local = append(local, cand{mask: prevMask.With(v), v: v, ctx: c, ws: wss[w]})
					}
				}
				results[w] = local
				meters[w] = lm
			}(w)
		}
		wg.Wait()

		// Deterministic merge: process candidates in (mask, v) order so
		// ties break exactly as in the serial algorithm (smallest v).
		var all []cand
		for _, r := range results {
			all = append(all, r...)
		}

		// Charge the layer's transitions against the budget and poll the
		// context once per layer boundary; on a stop, every candidate
		// table is dropped before any entered the meter, so LiveCells
		// falls back to the surviving layers only.
		if err := lim.spend(uint64(len(all))); err != nil {
			for _, c := range all {
				c.ws.recycle(c.ctx)
			}
			releaseLayer()
			meter.free(base.cells())
			return nil, err
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].mask != all[j].mask {
				return all[i].mask < all[j].mask
			}
			return all[i].v < all[j].v
		})
		// Keep the first (smallest v) strictly-cheapest candidate per mask;
		// dropped tables go back to the arena of the worker that produced
		// them (safe: all workers have joined).
		kept := make(map[bitops.Mask]cand, len(all)/k+1)
		var layerCells, keptCells uint64
		for _, c := range all {
			layerCells += c.ctx.cells()
			if cur, ok := kept[c.mask]; !ok || c.ctx.cost < cur.ctx.cost {
				if ok {
					keptCells -= cur.ctx.cells()
					cur.ws.recycle(cur.ctx)
				}
				kept[c.mask] = c
				bestLast[c.mask] = c.v
				keptCells += c.ctx.cells()
			} else {
				c.ws.recycle(c.ctx)
			}
		}
		next := make(map[bitops.Mask]*fsContext, len(kept))
		for m, c := range kept {
			next[m] = c.ctx
		}
		// Merge worker meters; account candidate tables at layer
		// granularity (alloc everything produced, free what was dropped
		// plus the consumed previous layer).
		var layerOps, layerCompactions uint64
		for _, lm := range meters {
			layerOps += lm.CellOps
			layerCompactions += lm.Compactions
		}
		if meter != nil {
			for _, lm := range meters {
				meter.CellOps += lm.CellOps
				meter.Compactions += lm.Compactions
				meter.Evaluations += lm.Evaluations
			}
			meter.alloc(layerCells)
			meter.free(layerCells - keptCells)
		}
		releaseLayer()
		layer = next
		obs.Metrics.CellOps.Add(layerOps)
		obs.Metrics.Compactions.Add(layerCompactions)

		// The cell budget is enforced at the layer boundary, after the
		// meter has absorbed the layer's surviving tables.
		if err := lim.check(); err != nil {
			releaseLayer()
			meter.free(base.cells())
			return nil, err
		}
		if tr != nil {
			ev := obs.Event{
				Kind:    obs.KindLayerEnd,
				K:       k,
				Subsets: len(next),
				CellOps: layerOps,
				Elapsed: time.Since(layerStart),
			}
			if meter != nil {
				ev.LiveCells, ev.PeakCells = meter.LiveCells, meter.PeakCells
			}
			tr.Emit(ev)
		}
	}

	full := bitops.FullMask(n)
	minCost := layer[full].cost
	meter.free(layer[full].cells())
	wss[0].recycle(layer[full])
	meter.free(base.cells())

	order := make(truthtable.Ordering, n)
	mask := full
	for i := n - 1; i >= 0; i-- {
		v, ok := bestLast[mask]
		if !ok {
			panic("core: parallel DP missing parent pointer") //lint:allow nopanic internal invariant: the DP records a parent pointer for every kept subset
		}
		order[i] = v
		mask = mask.Without(v)
	}
	finishMetrics(meter)
	return finishResult(tt, nil, order, minCost, rule, meter), nil
}
