package core

import (
	stdctx "context"
	"runtime"
	"sort"
	"sync"
	"time"

	"obddopt/internal/bitops"
	"obddopt/internal/obs"
	"obddopt/internal/truthtable"
)

// ParallelOptions configures the multi-core dynamic program.
type ParallelOptions struct {
	// Rule selects the diagram variant (OBDD or ZDD).
	Rule Rule
	// Workers is the goroutine count; 0 selects GOMAXPROCS.
	Workers int
	// Meter, if non-nil, accumulates operation counts. Updates are
	// merged once per layer, not per compaction, so LiveCells/PeakCells
	// are layer-granular approximations of the serial meter.
	Meter *Meter
	// Trace, if non-nil, receives layer-granular events. Events are
	// emitted only from the coordinating goroutine — workers never touch
	// the tracer — so any Tracer implementation is race-free here;
	// per-compaction events are not emitted by the parallel solver.
	Trace obs.Tracer
	// Budget bounds the run's resources; the zero value is unlimited.
	// Enforced only by OptimalOrderingParallelCtx, at layer granularity
	// for MaxCells (the meter merges once per layer) and transition
	// granularity for MaxNodes.
	Budget Budget
}

// OptimalOrderingParallel is OptimalOrdering with each DP layer fanned out
// over a worker pool: the transitions of one layer are independent
// (subset I's candidates read only layer k−1), so workers process
// disjoint slices of the previous layer and merge their partial next
// layers deterministically. Results are bit-identical to the serial
// algorithm, including tie-breaking.
func OptimalOrderingParallel(tt *truthtable.Table, opts *ParallelOptions) *Result {
	return mustResult(OptimalOrderingParallelCtx(nil, tt, opts))
}

// OptimalOrderingParallelCtx is OptimalOrderingParallel under a context
// and resource budget. Workers poll the context once per previous-layer
// subset, so a cancellation stops the fan-out well inside one layer; the
// coordinator then releases every table produced so far and returns
// ErrCanceled / ErrBudgetExceeded with a nil Result (the DP holds no
// incumbent before it completes).
func OptimalOrderingParallelCtx(ctx stdctx.Context, tt *truthtable.Table, opts *ParallelOptions) (*Result, error) {
	rule := OBDD
	var meter *Meter
	var tr obs.Tracer
	var budget Budget
	workers := runtime.GOMAXPROCS(0)
	if opts != nil {
		rule = opts.Rule
		meter = opts.Meter
		tr = opts.Trace
		budget = opts.Budget
		if opts.Workers > 0 {
			workers = opts.Workers
		}
	}
	meter = meterFor(meter, budget)
	n := tt.NumVars()
	if workers < 1 {
		workers = 1
	}
	if n <= 2 || workers == 1 {
		return OptimalOrderingCtx(ctx, tt, &Options{Rule: rule, Meter: meter, Trace: tr, Budget: budget})
	}
	lim := newLimiter(ctx, budget, meter)
	obs.Metrics.RunsStarted.Inc()

	base := baseContext(tt)
	meter.alloc(base.cells())
	bestLast := make(map[bitops.Mask]int)
	layer := map[bitops.Mask]*fsContext{0: base}

	// releaseLayer returns the current layer's tables to the meter (the
	// caller-owned base context excluded); used on both the normal
	// per-layer hand-over and the abort path.
	releaseLayer := func() {
		for m, c := range layer {
			if m != 0 || c != base {
				meter.free(c.cells())
			}
		}
	}

	type cand struct {
		mask bitops.Mask
		v    int
		ctx  *fsContext
	}
	for k := 1; k <= n; k++ {
		var layerStart time.Time
		if tr != nil {
			layerStart = time.Now()
			tr.Emit(obs.Event{Kind: obs.KindLayerStart, K: k, Subsets: len(layer)})
		}
		// Snapshot the previous layer into a deterministic work list.
		prev := make([]bitops.Mask, 0, len(layer))
		for m := range layer {
			prev = append(prev, m)
		}
		sort.Slice(prev, func(i, j int) bool { return prev[i] < prev[j] })

		results := make([][]cand, workers)
		meters := make([]*Meter, workers)
		obs.Metrics.WorkerSpawns.Add(uint64(workers))
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				var local []cand
				lm := &Meter{}
				for i := w; i < len(prev); i += workers {
					// Cooperative checkpoint: ctx polling is safe from
					// any goroutine; budget accounting stays with the
					// coordinator.
					if lim.stopped() {
						break
					}
					prevMask := prev[i]
					prevCtx := layer[prevMask]
					for v := 0; v < n; v++ {
						if prevMask.Has(v) {
							continue
						}
						c, _ := compact(prevCtx, v, rule, lm)
						local = append(local, cand{mask: prevMask.With(v), v: v, ctx: c})
					}
				}
				results[w] = local
				meters[w] = lm
			}(w)
		}
		wg.Wait()

		// Deterministic merge: process candidates in (mask, v) order so
		// ties break exactly as in the serial algorithm (smallest v).
		var all []cand
		for _, r := range results {
			all = append(all, r...)
		}

		// Charge the layer's transitions against the budget and poll the
		// context once per layer boundary; on a stop, every candidate
		// table is dropped before any entered the meter, so LiveCells
		// falls back to the surviving layers only.
		if err := lim.spend(uint64(len(all))); err != nil {
			releaseLayer()
			meter.free(base.cells())
			return nil, err
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].mask != all[j].mask {
				return all[i].mask < all[j].mask
			}
			return all[i].v < all[j].v
		})
		next := make(map[bitops.Mask]*fsContext, len(all)/k+1)
		var layerCells, keptCells uint64
		for _, c := range all {
			layerCells += c.ctx.cells()
			if cur, ok := next[c.mask]; !ok || c.ctx.cost < cur.cost {
				if ok {
					keptCells -= cur.cells()
				}
				next[c.mask] = c.ctx
				bestLast[c.mask] = c.v
				keptCells += c.ctx.cells()
			}
		}
		// Merge worker meters; account candidate tables at layer
		// granularity (alloc everything produced, free what was dropped
		// plus the consumed previous layer).
		var layerOps, layerCompactions uint64
		for _, lm := range meters {
			layerOps += lm.CellOps
			layerCompactions += lm.Compactions
		}
		if meter != nil {
			for _, lm := range meters {
				meter.CellOps += lm.CellOps
				meter.Compactions += lm.Compactions
				meter.Evaluations += lm.Evaluations
			}
			meter.alloc(layerCells)
			meter.free(layerCells - keptCells)
		}
		releaseLayer()
		layer = next
		obs.Metrics.CellOps.Add(layerOps)
		obs.Metrics.Compactions.Add(layerCompactions)

		// The cell budget is enforced at the layer boundary, after the
		// meter has absorbed the layer's surviving tables.
		if err := lim.check(); err != nil {
			releaseLayer()
			meter.free(base.cells())
			return nil, err
		}
		if tr != nil {
			ev := obs.Event{
				Kind:    obs.KindLayerEnd,
				K:       k,
				Subsets: len(next),
				CellOps: layerOps,
				Elapsed: time.Since(layerStart),
			}
			if meter != nil {
				ev.LiveCells, ev.PeakCells = meter.LiveCells, meter.PeakCells
			}
			tr.Emit(ev)
		}
	}

	full := bitops.FullMask(n)
	minCost := layer[full].cost
	meter.free(layer[full].cells())
	meter.free(base.cells())

	order := make(truthtable.Ordering, n)
	mask := full
	for i := n - 1; i >= 0; i-- {
		v, ok := bestLast[mask]
		if !ok {
			panic("core: parallel DP missing parent pointer") //lint:allow nopanic internal invariant: the DP records a parent pointer for every kept subset
		}
		order[i] = v
		mask = mask.Without(v)
	}
	finishMetrics(meter)
	return finishResult(tt, nil, order, minCost, rule, meter), nil
}
