package core

import (
	"encoding/json"
	"errors"
	"testing"
)

func TestParseRule(t *testing.T) {
	cases := []struct {
		in      string
		want    Rule
		wantErr bool
	}{
		{"obdd", OBDD, false},
		{"OBDD", OBDD, false},
		{"Obdd", OBDD, false},
		{"zdd", ZDD, false},
		{"ZDD", ZDD, false},
		{"", OBDD, true},
		{"mtbdd", OBDD, true},
		{"obdd ", OBDD, true},
		{"bdd", OBDD, true},
	}
	for _, c := range cases {
		got, err := ParseRule(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("ParseRule(%q): err = %v, wantErr %v", c.in, err, c.wantErr)
			continue
		}
		if err != nil {
			var ure *UnknownRuleError
			if !errors.As(err, &ure) {
				t.Errorf("ParseRule(%q): error %T, want *UnknownRuleError", c.in, err)
			} else if ure.Name != c.in {
				t.Errorf("ParseRule(%q): error names %q", c.in, ure.Name)
			}
			if !errors.Is(err, ErrInvalidInput) {
				t.Errorf("ParseRule(%q): error does not match ErrInvalidInput", c.in)
			}
			continue
		}
		if got != c.want {
			t.Errorf("ParseRule(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestRuleUnmarshalJSON(t *testing.T) {
	cases := []struct {
		in      string
		want    Rule
		wantErr bool
	}{
		{`"OBDD"`, OBDD, false},
		{`"obdd"`, OBDD, false},
		{`"ZDD"`, ZDD, false},
		{`"zdd"`, ZDD, false},
		{`0`, OBDD, false},
		{`1`, ZDD, false},
		{`"mtbdd"`, OBDD, true},
		{`""`, OBDD, true},
		{`2`, OBDD, true},
		{`"2"`, OBDD, true},
		{`null`, OBDD, true},
		{`true`, OBDD, true},
	}
	for _, c := range cases {
		var r Rule
		err := json.Unmarshal([]byte(c.in), &r)
		if (err != nil) != c.wantErr {
			t.Errorf("Unmarshal(%s): err = %v, wantErr %v", c.in, err, c.wantErr)
			continue
		}
		if err != nil {
			var ure *UnknownRuleError
			if !errors.As(err, &ure) {
				t.Errorf("Unmarshal(%s): error %T, want *UnknownRuleError", c.in, err)
			}
			continue
		}
		if r != c.want {
			t.Errorf("Unmarshal(%s) = %v, want %v", c.in, r, c.want)
		}
	}
}

// TestRuleJSONRoundTrip pins the report encoding: rules marshal as their
// conventional names and decode back to themselves.
func TestRuleJSONRoundTrip(t *testing.T) {
	for _, r := range []Rule{OBDD, ZDD} {
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatalf("Marshal(%v): %v", r, err)
		}
		var back Rule
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("Unmarshal(%s): %v", b, err)
		}
		if back != r {
			t.Errorf("round trip %v -> %s -> %v", r, b, back)
		}
	}
}
