package core

import (
	"context"
	"errors"
	"fmt"
)

// This file is the cancellation-and-budget layer threaded through every
// solver loop: the sentinel errors of the Solve API, the resource Budget,
// and the limiter the loops poll at cooperative checkpoints. A nil
// *limiter disables all checking, so the legacy (context-free) entry
// points pay nothing.

// Sentinel errors of the context-aware solver API. Callers test them with
// errors.Is; the concrete error returned by a solver may wrap additional
// detail (the context cause, the exhausted budget dimension).
var (
	// ErrCanceled reports that the run stopped early because its
	// context was canceled or its deadline expired. The accompanying
	// *Result, when non-nil, is the best incumbent found before the stop
	// (exactness is NOT guaranteed).
	ErrCanceled = errors.New("obddopt: run canceled")
	// ErrBudgetExceeded reports that the run stopped early because a
	// resource budget (live DP cells, search nodes) was exhausted. The
	// accompanying *Result, when non-nil, is the best incumbent found.
	ErrBudgetExceeded = errors.New("obddopt: resource budget exceeded")
	// ErrInvalidInput reports a malformed problem (nil table, variable
	// count out of range, unknown solver or rule name).
	ErrInvalidInput = errors.New("obddopt: invalid input")
)

// Budget bounds the resources a solver run may consume. The zero value is
// unlimited. Budgets are enforced cooperatively at the same checkpoints as
// context cancellation, so enforcement granularity is one DP transition /
// one search-node expansion.
type Budget struct {
	// MaxCells caps the live table cells (the Meter.LiveCells gauge —
	// Remark 1's space measure). 0 means unlimited. Enforcing it
	// requires metering; solvers allocate a private Meter when the
	// caller did not supply one.
	MaxCells uint64
	// MaxNodes caps the number of DP transitions / branch-and-bound
	// node expansions / brute-force prefix extensions. 0 means
	// unlimited.
	MaxNodes uint64
}

// zero reports whether the budget imposes no limit.
func (b Budget) zero() bool { return b.MaxCells == 0 && b.MaxNodes == 0 }

// limiter carries the cooperative-checkpoint state of one run: the
// context, the budget, and the node counter. Methods are nil-safe; a nil
// limiter is the legacy unlimited path.
type limiter struct {
	ctx    context.Context
	budget Budget
	meter  *Meter
	nodes  uint64
}

// newLimiter returns the limiter for one run, or nil when neither
// cancellation nor budget enforcement is requested (ctx == nil and a zero
// budget), keeping the legacy fast path allocation-free.
func newLimiter(ctx context.Context, budget Budget, m *Meter) *limiter {
	if ctx == nil && budget.zero() {
		return nil
	}
	return &limiter{ctx: ctx, budget: budget, meter: m}
}

// check polls the cancellation and budget state; it is the cooperative
// checkpoint every solver loop calls once per transition/expansion.
func (l *limiter) check() error {
	if l == nil {
		return nil
	}
	if l.ctx != nil {
		select {
		case <-l.ctx.Done():
			return fmt.Errorf("%w: %v", ErrCanceled, l.ctx.Err())
		default:
		}
	}
	if l.budget.MaxCells > 0 && l.meter != nil && l.meter.LiveCells > l.budget.MaxCells {
		return fmt.Errorf("%w: live cells %d > budget %d", ErrBudgetExceeded, l.meter.LiveCells, l.budget.MaxCells)
	}
	if l.budget.MaxNodes > 0 && l.nodes > l.budget.MaxNodes {
		return fmt.Errorf("%w: %d nodes > budget %d", ErrBudgetExceeded, l.nodes, l.budget.MaxNodes)
	}
	return nil
}

// spend charges n nodes against the budget and then checks.
func (l *limiter) spend(n uint64) error {
	if l == nil {
		return nil
	}
	l.nodes += n
	return l.check()
}

// stopped reports (cheaply, and safely from any goroutine) whether the
// run's context is done. Workers of the parallel solver poll it so a
// cancellation does not have to wait for a whole layer.
func (l *limiter) stopped() bool {
	if l == nil || l.ctx == nil {
		return false
	}
	select {
	case <-l.ctx.Done():
		return true
	default:
		return false
	}
}

// meterFor returns the meter the run should use: the caller's, or a
// private one when a cell budget demands metering the caller did not set
// up.
func meterFor(m *Meter, budget Budget) *Meter {
	if m == nil && budget.MaxCells > 0 {
		return &Meter{}
	}
	return m
}

// mustResult asserts that a context-free run cannot fail: the legacy
// wrappers call their Ctx counterparts with a background context and no
// budget, where the only error sources are disabled.
func mustResult[T any](res T, err error) T {
	if err != nil {
		panic(fmt.Sprintf("core: context-free run failed unexpectedly: %v", err)) //lint:allow nopanic impossible-error assertion: legacy context-free wrappers disable every error source
	}
	return res
}
