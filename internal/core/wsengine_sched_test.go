package core

import (
	stdctx "context"
	"errors"
	"math/rand"
	"testing"

	"obddopt/internal/obs"
	"obddopt/internal/truthtable"
)

// TestWSDequeSemantics pins the deque discipline the scheduler relies
// on: the owner pops LIFO at the back, thieves steal FIFO at the front,
// and both report emptiness instead of blocking.
func TestWSDequeSemantics(t *testing.T) {
	var d wsDeque
	for s := 0; s < 3; s++ {
		d.push(wsTask{layer: 1, shard: s})
	}
	if got, ok := d.steal(); !ok || got.shard != 0 {
		t.Fatalf("steal = %+v, %v; want shard 0 (FIFO front)", got, ok)
	}
	if got, ok := d.pop(); !ok || got.shard != 2 {
		t.Fatalf("pop = %+v, %v; want shard 2 (LIFO back)", got, ok)
	}
	if got, ok := d.pop(); !ok || got.shard != 1 {
		t.Fatalf("pop = %+v, %v; want shard 1", got, ok)
	}
	if _, ok := d.pop(); ok {
		t.Fatal("pop on empty deque reported a task")
	}
	if _, ok := d.steal(); ok {
		t.Fatal("steal on empty deque reported a task")
	}
}

// TestWSEngineStealPath drives the run loop's steal branch
// deterministically: with one shard per layer, worker 1 claims the only
// eligible shard, then worker 0's scheduling loop — own deque empty,
// nothing left to claim — must steal it and carry the whole pipeline to
// completion single-handedly. The final layer's cost must still match
// the serial dynamic program.
func TestWSEngineStealPath(t *testing.T) {
	f := truthtable.Random(6, rand.New(rand.NewSource(221)))
	serial := OptimalOrdering(f, nil)

	base := baseContext(f)
	e := newWSEngine(nil, base, OBDD, 2, 30, false, Budget{}, nil)
	if !e.claim(1) {
		t.Fatal("claim(1) found no eligible shard")
	}
	if _, ok := e.deques[0].pop(); ok {
		t.Fatal("worker 0's deque should start empty")
	}
	e.run(0)
	if err := e.failErr(); err != nil {
		t.Fatalf("engine failed: %v", err)
	}
	if !e.finished() {
		t.Fatal("pipeline did not finish")
	}
	if e.workers[0].steals == 0 {
		t.Fatal("worker 0 completed the pipeline without stealing the claimed shard")
	}
	if got := e.layers[e.n].costs[0]; got != serial.MinCost {
		t.Fatalf("final-layer cost %d != serial %d", got, serial.MinCost)
	}
	e.releaseAll()
}

// TestWSWorkerGenWraparound checks the width-counting scratch's stamp
// discipline: the first use allocates the label set lazily, and a
// generation wraparound clears it instead of aliasing stale stamps.
func TestWSWorkerGenWraparound(t *testing.T) {
	wk := &wsWorker{}
	if g := wk.nextGen(); g != 1 {
		t.Fatalf("first nextGen = %d, want 1", g)
	}
	if len(wk.seen) != 1<<16 {
		t.Fatalf("seen len = %d, want %d", len(wk.seen), 1<<16)
	}
	wk.seen[7] = wk.gen
	wk.gen = ^uint32(0)
	if g := wk.nextGen(); g != 1 {
		t.Fatalf("nextGen after wrap = %d, want 1", g)
	}
	if wk.seen[7] != 0 {
		t.Fatal("wraparound did not clear stale stamps")
	}
}

// TestParallelCellBudget covers the live-cell budget at allocation
// granularity: a cap below base+first-table trips ErrBudgetExceeded
// with the drain contract, while a generous cap completes bit-identical
// to the serial DP through the same checked path.
func TestParallelCellBudget(t *testing.T) {
	f := truthtable.Random(10, rand.New(rand.NewSource(222)))
	m := &Meter{}
	res, err := OptimalOrderingParallel(nil, f, &SolveOptions{
		Workers: 2,
		Meter:   m,
		Budget:  Budget{MaxCells: 1100}, // base 1024 + first 512-cell table exceeds this
	})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if res != nil {
		t.Fatalf("res = %+v, want nil", res)
	}
	if m.LiveCells != 0 {
		t.Errorf("LiveCells = %d after budget stop, want 0", m.LiveCells)
	}

	g := truthtable.Random(7, rand.New(rand.NewSource(223)))
	serial := OptimalOrdering(g, nil)
	ok := mustResult(OptimalOrderingParallel(nil, g, &SolveOptions{
		Workers: 2,
		Budget:  Budget{MaxCells: 1 << 20},
	}))
	if ok.MinCost != serial.MinCost {
		t.Fatalf("budgeted run cost %d != serial %d", ok.MinCost, serial.MinCost)
	}
}

type tracerStub struct{ events int }

func (s *tracerStub) Emit(obs.Event) { s.events++ }

// TestSolveOptionHelpers covers the functional-option constructors the
// facade translates into; each must set exactly its field.
func TestSolveOptionHelpers(t *testing.T) {
	m := &Meter{}
	tr := &tracerStub{}
	seeder := Seeder(func(_ stdctx.Context, _ *truthtable.Table, _ Rule, _ obs.Tracer) (truthtable.Ordering, uint64, bool) {
		return nil, 0, false
	})
	o := NewSolveOptions(
		WithRule(ZDD),
		WithMeter(m),
		WithTrace(tr),
		WithBudget(Budget{MaxCells: 5, MaxNodes: 9}),
		WithWorkers(3),
		WithSeeder(seeder),
	)
	if o.Rule != ZDD {
		t.Errorf("Rule = %v, want ZDD", o.Rule)
	}
	if o.Meter != m {
		t.Error("Meter not set")
	}
	if o.Trace != obs.Tracer(tr) {
		t.Error("Trace not set")
	}
	if o.Budget != (Budget{MaxCells: 5, MaxNodes: 9}) {
		t.Errorf("Budget = %+v", o.Budget)
	}
	if o.Workers != 3 {
		t.Errorf("Workers = %d, want 3", o.Workers)
	}
	if o.Seeder == nil {
		t.Error("Seeder not set")
	}
}
