package core_test

// The portfolio tests live in the external test package so they can link
// internal/heuristics — which installs core.DefaultSeeder from its init —
// the same way real users get it via the top-level facade. Inside package
// core that import would be a cycle.

import (
	stdctx "context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"obddopt/internal/core"
	_ "obddopt/internal/heuristics" // installs core.DefaultSeeder
	"obddopt/internal/obs"
	"obddopt/internal/truthtable"
)

// TestPortfolioMatchesDP is the acceptance equality check: on random
// functions of up to 10 variables, under both diagram rules, the
// portfolio returns exactly the dynamic program's optimal cost.
func TestPortfolioMatchesDP(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, rule := range []core.Rule{core.OBDD, core.ZDD} {
		for i := 0; i < 8; i++ {
			n := 4 + rng.Intn(7) // 4..10
			tt := truthtable.Random(n, rng)
			want := core.OptimalOrdering(tt, &core.SolveOptions{Rule: rule})
			got, err := core.Portfolio(nil, tt, &core.SolveOptions{Rule: rule})
			if err != nil {
				t.Fatalf("rule %v n=%d: %v", rule, n, err)
			}
			if got.MinCost != want.MinCost {
				t.Errorf("rule %v n=%d: portfolio MinCost = %d, DP = %d", rule, n, got.MinCost, want.MinCost)
			}
			if got.Size != core.SizeUnder(tt, got.Ordering, rule, nil) {
				t.Errorf("rule %v n=%d: reported size %d not achieved by returned ordering", rule, n, got.Size)
			}
		}
	}
}

// TestPortfolioDeadlineReturnsIncumbent is the acceptance deadline check:
// on a function large enough that no exact lane can finish in 50ms, the
// portfolio returns ErrCanceled promptly, carrying the heuristic
// incumbent — a valid ordering — instead of hanging.
func TestPortfolioDeadlineReturnsIncumbent(t *testing.T) {
	n := 14
	tt := truthtable.Random(n, rand.New(rand.NewSource(123)))
	ctx, cancel := stdctx.WithTimeout(stdctx.Background(), 50*time.Millisecond)
	defer cancel()
	m := &core.Meter{}
	start := time.Now()
	res, err := core.Portfolio(ctx, tt, &core.SolveOptions{Meter: m})
	elapsed := time.Since(start)
	if !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if res == nil {
		t.Fatal("no incumbent returned; the heuristic phase always yields one")
	}
	if len(res.Ordering) != n || !res.Ordering.Valid() {
		t.Fatalf("incumbent ordering %v is not a permutation of %d variables", res.Ordering, n)
	}
	if got := core.SizeUnder(tt, res.Ordering, core.OBDD, nil); got != res.Size {
		t.Errorf("incumbent size %d but ordering achieves %d", res.Size, got)
	}
	// Promptness: the cooperative checkpoints fire per transition, so the
	// return should follow the deadline closely, not by seconds.
	if elapsed > 5*time.Second {
		t.Errorf("portfolio took %v past a 50ms deadline", elapsed)
	}
	if m.LiveCells != 0 {
		t.Errorf("LiveCells = %d after the race, want 0", m.LiveCells)
	}
}

// TestPortfolioTraceShowsWinner is the acceptance trace check: a
// completed portfolio run emits lane_start events for every lane and
// exactly one race_won naming an exact lane.
func TestPortfolioTraceShowsWinner(t *testing.T) {
	tt := truthtable.Random(8, rand.New(rand.NewSource(5)))
	rec := obs.NewRecorder()
	res, err := core.Portfolio(nil, tt, &core.SolveOptions{Trace: rec})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Count(obs.KindLaneStart) < 3 {
		t.Errorf("lane_start events = %d, want ≥ 3 (heuristic + 2 exact lanes)", rec.Count(obs.KindLaneStart))
	}
	var won []obs.Event
	for _, ev := range rec.Events() {
		if ev.Kind == obs.KindRaceWon {
			won = append(won, ev)
		}
	}
	if len(won) != 1 {
		t.Fatalf("race_won events = %d, want exactly 1", len(won))
	}
	if lane := won[0].Lane; lane != "fs" && lane != "parallel" && lane != "bnb" {
		t.Errorf("race won by %q, want an exact lane", lane)
	}
	if won[0].Cost != res.MinCost {
		t.Errorf("race_won cost %d != result MinCost %d", won[0].Cost, res.MinCost)
	}
	// The collector folds the same stream into a portfolio report section.
	col := obs.NewCollector()
	for _, ev := range rec.Events() {
		col.Emit(ev)
	}
	rep := col.Report()
	if rep.Portfolio == nil || rep.Portfolio.Winner == "" {
		t.Errorf("collector report has no portfolio winner: %+v", rep.Portfolio)
	}
}

// TestPortfolioBudget verifies budget exhaustion degrades to the
// heuristic incumbent with ErrBudgetExceeded.
func TestPortfolioBudget(t *testing.T) {
	tt := truthtable.Random(10, rand.New(rand.NewSource(77)))
	res, err := core.Portfolio(nil, tt, &core.SolveOptions{Budget: core.Budget{MaxNodes: 30}})
	if !errors.Is(err, core.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if res == nil {
		t.Fatal("no incumbent returned")
	}
	if len(res.Ordering) != 10 || !res.Ordering.Valid() {
		t.Fatalf("incumbent ordering %v invalid", res.Ordering)
	}
}

// TestRegistryNames pins the public solver names.
func TestRegistryNames(t *testing.T) {
	want := []string{"bnb", "brute", "dnc", "fs", "parallel", "portfolio"}
	got := core.SolverNames()
	if len(got) != len(want) {
		t.Fatalf("SolverNames() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SolverNames() = %v, want %v", got, want)
		}
	}
}
