package bitops

import (
	"math"
	"math/bits"
	"testing"
	"testing/quick"
)

func TestFullMask(t *testing.T) {
	cases := []struct {
		n    int
		want Mask
	}{
		{0, 0}, {1, 1}, {2, 3}, {3, 7}, {8, 0xff}, {16, 0xffff},
	}
	for _, c := range cases {
		if got := FullMask(c.n); got != c.want {
			t.Errorf("FullMask(%d) = %#x, want %#x", c.n, got, c.want)
		}
	}
	if got := FullMask(64); got != ^Mask(0) {
		t.Errorf("FullMask(64) = %#x", got)
	}
}

func TestMaskMembership(t *testing.T) {
	m := Mask(0).With(1).With(4).With(7)
	for i := 0; i < 10; i++ {
		want := i == 1 || i == 4 || i == 7
		if m.Has(i) != want {
			t.Errorf("Has(%d) = %v, want %v", i, m.Has(i), want)
		}
	}
	if m.Count() != 3 {
		t.Errorf("Count = %d, want 3", m.Count())
	}
	m2 := m.Without(4)
	if m2.Has(4) || m2.Count() != 2 {
		t.Errorf("Without(4) = %#x", m2)
	}
	// Without on a non-member is a no-op.
	if m.Without(5) != m {
		t.Errorf("Without non-member changed mask")
	}
}

func TestMembers(t *testing.T) {
	m := Mask(0b10110)
	got := m.Members(nil)
	want := []int{1, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("Members = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Members = %v, want %v", got, want)
		}
	}
	if Mask(0).Members(nil) != nil {
		t.Errorf("Members of empty mask should stay nil")
	}
}

func TestLowest(t *testing.T) {
	if Mask(0b1000).Lowest() != 3 {
		t.Errorf("Lowest(0b1000) != 3")
	}
	defer func() {
		if recover() == nil {
			t.Errorf("Lowest(0) did not panic")
		}
	}()
	Mask(0).Lowest()
}

func TestSubsetsOfSizeCount(t *testing.T) {
	for n := 0; n <= 10; n++ {
		for k := 0; k <= n; k++ {
			var count uint64
			seen := map[Mask]bool{}
			SubsetsOfSize(n, k, func(m Mask) {
				count++
				if m.Count() != k {
					t.Fatalf("n=%d k=%d: subset %#x has wrong size", n, k, m)
				}
				if m >= FullMask(n)+1 && n < 64 {
					t.Fatalf("n=%d k=%d: subset %#x out of range", n, k, m)
				}
				if seen[m] {
					t.Fatalf("n=%d k=%d: subset %#x repeated", n, k, m)
				}
				seen[m] = true
			})
			if count != Binomial(n, k) {
				t.Errorf("n=%d k=%d: got %d subsets, want C=%d", n, k, count, Binomial(n, k))
			}
		}
	}
}

func TestSubsetsOfSizeDegenerate(t *testing.T) {
	called := false
	SubsetsOfSize(5, -1, func(Mask) { called = true })
	SubsetsOfSize(5, 6, func(Mask) { called = true })
	if called {
		t.Errorf("SubsetsOfSize called fn for out-of-range k")
	}
}

func TestSubMasks(t *testing.T) {
	m := Mask(0b1010)
	var got []Mask
	SubMasks(m, func(s Mask) { got = append(got, s) })
	if len(got) != 4 {
		t.Fatalf("SubMasks count = %d, want 4", len(got))
	}
	for _, s := range got {
		if s&^m != 0 {
			t.Errorf("submask %#x not within %#x", s, m)
		}
	}
}

func TestBinomialValues(t *testing.T) {
	cases := []struct {
		n, k int
		want uint64
	}{
		{0, 0, 1}, {5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {10, 3, 120},
		{20, 10, 184756}, {40, 20, 137846528820}, {6, 7, 0}, {6, -1, 0},
	}
	for _, c := range cases {
		if got := Binomial(c.n, c.k); got != c.want {
			t.Errorf("Binomial(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestBinomialPascal(t *testing.T) {
	for n := 1; n <= 30; n++ {
		for k := 1; k < n; k++ {
			if Binomial(n, k) != Binomial(n-1, k-1)+Binomial(n-1, k) {
				t.Fatalf("Pascal identity fails at (%d,%d)", n, k)
			}
		}
	}
}

func TestEntropy(t *testing.T) {
	if Entropy(0) != 0 || Entropy(1) != 0 {
		t.Errorf("Entropy endpoints not 0")
	}
	if math.Abs(Entropy(0.5)-1) > 1e-12 {
		t.Errorf("Entropy(0.5) = %v, want 1", Entropy(0.5))
	}
	// Symmetry H(p) = H(1-p).
	for _, p := range []float64{0.1, 0.25, 0.3, 0.45} {
		if math.Abs(Entropy(p)-Entropy(1-p)) > 1e-12 {
			t.Errorf("Entropy not symmetric at %v", p)
		}
	}
	// Known value: H(1/3) ≈ 0.9182958340544896.
	if math.Abs(Entropy(1.0/3)-0.9182958340544896) > 1e-12 {
		t.Errorf("Entropy(1/3) = %v", Entropy(1.0/3))
	}
}

func TestSpliceExtractRoundTrip(t *testing.T) {
	f := func(idx uint32, pos8 uint8, bit bool) bool {
		pos := uint(pos8 % 20)
		b := uint64(0)
		if bit {
			b = 1
		}
		spliced := SpliceIndex(uint64(idx), pos, b)
		back, gotBit := ExtractIndex(spliced, pos)
		return back == uint64(idx) && gotBit == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSpliceIndexExamples(t *testing.T) {
	// idx=0b101, insert bit 1 at pos 1 → 0b1011.
	if got := SpliceIndex(0b101, 1, 1); got != 0b1011 {
		t.Errorf("SpliceIndex = %b, want 1011", got)
	}
	// Insert at pos 0 shifts everything left.
	if got := SpliceIndex(0b11, 0, 0); got != 0b110 {
		t.Errorf("SpliceIndex = %b, want 110", got)
	}
}

func TestRelativePosition(t *testing.T) {
	free := Mask(0b101101) // members 0,2,3,5
	cases := []struct {
		v    int
		want uint
	}{{0, 0}, {1, 1}, {2, 1}, {3, 2}, {4, 3}, {5, 3}, {6, 4}}
	for _, c := range cases {
		if got := RelativePosition(free, c.v); got != c.want {
			t.Errorf("RelativePosition(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestNextSubsetSameSizeSequence(t *testing.T) {
	// 2-subsets of {0..3}: 0011,0101,0110,1001,1010,1100.
	want := []Mask{0b0011, 0b0101, 0b0110, 0b1001, 0b1010, 0b1100}
	m := FirstSubsetOfSize(2)
	var got []Mask
	for {
		got = append(got, m)
		next, ok := NextSubsetSameSize(m, 4)
		if !ok {
			break
		}
		m = next
	}
	if len(got) != len(want) {
		t.Fatalf("sequence length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("step %d: got %#b, want %#b", i, got[i], want[i])
		}
	}
	if _, ok := NextSubsetSameSize(0, 4); ok {
		t.Errorf("NextSubsetSameSize(0) should report !ok")
	}
}

func TestFactorialAndPow3(t *testing.T) {
	if Factorial(0) != 1 || Factorial(1) != 1 || Factorial(5) != 120 {
		t.Errorf("Factorial wrong")
	}
	if Pow3(3) != 27 {
		t.Errorf("Pow3(3) = %v", Pow3(3))
	}
}

// Property: splicing a bit for every variable position reconstructs a
// consistent pair of indices used by table compaction — the two spliced
// indices differ exactly in the inserted bit.
func TestSplicePairDiffer(t *testing.T) {
	f := func(idx uint16, pos8 uint8) bool {
		pos := uint(pos8 % 16)
		i0 := SpliceIndex(uint64(idx), pos, 0)
		i1 := SpliceIndex(uint64(idx), pos, 1)
		return i1-i0 == 1<<pos && bits.OnesCount64(i0^i1) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
