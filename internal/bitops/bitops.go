// Package bitops provides the bit-twiddling and combinatorial substrate used
// throughout the optimal-ordering dynamic programs: subset enumeration in
// layer (popcount) order, index splicing for table compaction, binomial
// coefficients, and the binary entropy function used in the complexity
// analyses.
//
// Variable subsets I ⊆ {0, …, n−1} are represented as bitmasks (Mask); bit i
// set means variable i is a member. All functions are pure and
// allocation-free unless documented otherwise.
package bitops

import (
	"math"
	"math/bits"
)

// Mask is a subset of variables {0, …, n−1} encoded as a bitmask.
// Bit i set means variable i is in the set. Masks support up to 64
// variables, far beyond the reach of the O*(3^n) dynamic program.
type Mask uint64

// FullMask returns the mask containing variables 0..n-1.
func FullMask(n int) Mask {
	if n >= 64 {
		return ^Mask(0)
	}
	return Mask(1)<<uint(n) - 1
}

// Has reports whether variable i is in the set.
func (m Mask) Has(i int) bool { return m>>uint(i)&1 == 1 }

// With returns m with variable i added.
func (m Mask) With(i int) Mask { return m | 1<<uint(i) }

// Without returns m with variable i removed.
func (m Mask) Without(i int) Mask { return m &^ (1 << uint(i)) }

// Count returns the cardinality of the set.
func (m Mask) Count() int { return bits.OnesCount64(uint64(m)) }

// Members appends the elements of m in increasing order to dst and
// returns the extended slice. Pass a slice with sufficient capacity to
// avoid allocation.
func (m Mask) Members(dst []int) []int {
	for t := m; t != 0; t &= t - 1 {
		dst = append(dst, bits.TrailingZeros64(uint64(t)))
	}
	return dst
}

// Lowest returns the smallest member of m. It panics if m is empty.
func (m Mask) Lowest() int {
	if m == 0 {
		panic("bitops: Lowest of empty mask")
	}
	return bits.TrailingZeros64(uint64(m))
}

// NextSubsetSameSize advances a k-element subset mask to the
// lexicographically next k-element mask (Gosper's hack). It returns ok =
// false when m was the last k-subset that fits below limit bits, i.e. when
// the successor would use a bit ≥ limit.
func NextSubsetSameSize(m Mask, limit int) (next Mask, ok bool) {
	if m == 0 {
		return 0, false
	}
	c := m & -m
	r := m + c
	next = (((r ^ m) >> 2) / c) | r
	if next >= Mask(1)<<uint(limit) {
		return 0, false
	}
	return next, true
}

// FirstSubsetOfSize returns the lexicographically first k-element subset of
// {0..n-1}: the mask with the k lowest bits set. k may be 0.
func FirstSubsetOfSize(k int) Mask { return FullMask(k) }

// SubsetsOfSize calls fn for every k-element subset of {0..n-1} in
// lexicographic (Gosper) order. It is the layer iterator of the subset DP.
func SubsetsOfSize(n, k int, fn func(Mask)) {
	if k < 0 || k > n {
		return
	}
	if k == 0 {
		fn(0)
		return
	}
	m := FirstSubsetOfSize(k)
	for {
		fn(m)
		next, ok := NextSubsetSameSize(m, n)
		if !ok {
			return
		}
		m = next
	}
}

// SubMasks calls fn for every subset s of m, including 0 and m itself,
// in decreasing numeric order of s.
func SubMasks(m Mask, fn func(Mask)) {
	s := m
	for {
		fn(s)
		if s == 0 {
			return
		}
		s = (s - 1) & m
	}
}

// Binomial returns C(n, k) as a uint64. It panics on overflow, which cannot
// occur for the n ≤ 40 range exercised by the dynamic programs.
func Binomial(n, k int) uint64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	var c uint64 = 1
	for i := 0; i < k; i++ {
		hi, lo := bits.Mul64(c, uint64(n-i))
		if hi != 0 {
			panic("bitops: Binomial overflow")
		}
		c = lo / uint64(i+1)
	}
	return c
}

// Entropy returns the binary entropy H(p) = −p·log2(p) − (1−p)·log2(1−p),
// with H(0) = H(1) = 0. It is the H(·) of the papers' complexity bounds.
func Entropy(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}

// SpliceIndex inserts a bit at position pos into idx: the low pos bits of
// idx are kept, bit is placed at position pos, and the remaining high bits
// of idx are shifted up by one. It is the index arithmetic of table
// compaction: idx ranges over assignments to the free variables excluding
// x, and SpliceIndex produces the corresponding cell index in the larger
// table that still includes x at relative position pos.
func SpliceIndex(idx uint64, pos uint, bit uint64) uint64 {
	low := idx & (1<<pos - 1)
	high := idx >> pos
	return low | bit<<pos | high<<(pos+1)
}

// ExtractIndex is the inverse of SpliceIndex: it removes the bit at
// position pos from idx, returning the compacted index and the removed bit.
func ExtractIndex(idx uint64, pos uint) (compact uint64, bit uint64) {
	low := idx & (1<<pos - 1)
	bit = idx >> pos & 1
	high := idx >> (pos + 1)
	return low | high<<pos, bit
}

// RelativePosition returns the number of members of free that are smaller
// than v. When the free variables are listed in increasing order this is
// the bit position that variable v occupies in a table cell index over
// free. v need not be a member of free.
func RelativePosition(free Mask, v int) uint {
	below := free & (Mask(1)<<uint(v) - 1)
	return uint(below.Count())
}

// Pow3 returns 3^n as a float64 (used by complexity reporters).
func Pow3(n int) float64 { return math.Pow(3, float64(n)) }

// Factorial returns n! as a float64 (exact for n ≤ 20 as uint64 would be,
// but used only for reporting ratios).
func Factorial(n int) float64 {
	f := 1.0
	for i := 2; i <= n; i++ {
		f *= float64(i)
	}
	return f
}
