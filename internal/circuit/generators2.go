package circuit

// Additional benchmark netlists: control-path circuits whose ordering
// behavior differs from the arithmetic family — priority logic, code
// converters, population count, and a 1-bit ALU slice.

// PriorityEncoder returns a netlist with ⌈log2 n⌉ outputs encoding the
// index of the highest-priority (lowest-index) asserted input, plus a
// valid flag output; all-zero inputs encode index 0 with valid = 0.
func PriorityEncoder(n int) *Circuit {
	if n < 2 {
		panic("circuit: PriorityEncoder needs at least 2 inputs")
	}
	c := New(n)
	// higher[i] = some input with index < i is asserted.
	notIn := make([]int, n)
	for i := 0; i < n; i++ {
		notIn[i] = c.AddGate(Not, i)
	}
	// sel[i] = input i asserted and none before it.
	sel := make([]int, n)
	sel[0] = 0
	nonePrior := notIn[0]
	for i := 1; i < n; i++ {
		sel[i] = c.AddGate(And, i, nonePrior)
		if i+1 < n {
			nonePrior = c.AddGate(And, nonePrior, notIn[i])
		}
	}
	// Output bit b = OR of sel[i] with bit b of i set.
	bits := 0
	for 1<<uint(bits) < n {
		bits++
	}
	for b := 0; b < bits; b++ {
		var ins []int
		for i := 0; i < n; i++ {
			if i>>uint(b)&1 == 1 {
				ins = append(ins, sel[i])
			}
		}
		switch len(ins) {
		case 0:
			c.MarkOutput(c.AddGate(ConstFalse))
		case 1:
			c.MarkOutput(ins[0])
		default:
			c.MarkOutput(c.AddGate(Or, ins...))
		}
	}
	// Valid flag: any input asserted.
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	c.MarkOutput(c.AddGate(Or, all...))
	return c
}

// GrayToBinary returns the n-bit Gray-code-to-binary converter: binary
// bit i is the XOR of Gray bits i..n−1 (bit n−1 most significant).
func GrayToBinary(n int) *Circuit {
	c := New(n)
	acc := n - 1 // MSB passes through
	c.MarkOutput(acc)
	outs := []int{acc}
	for i := n - 2; i >= 0; i-- {
		acc = c.AddGate(Xor, acc, i)
		outs = append(outs, acc)
	}
	// Reverse so output j is binary bit j (LSB first), matching the
	// operand convention elsewhere: recompute outputs in LSB order.
	c.Outputs = nil
	for j := 0; j < n; j++ {
		c.MarkOutput(outs[n-1-j])
	}
	return c
}

// BinaryToGray returns the inverse converter: Gray bit i = b_i ⊕ b_{i+1}
// (with b_n = 0).
func BinaryToGray(n int) *Circuit {
	c := New(n)
	for i := 0; i < n-1; i++ {
		c.MarkOutput(c.AddGate(Xor, i, i+1))
	}
	c.MarkOutput(n - 1)
	return c
}

// PopCount returns a netlist computing the Hamming weight of its n inputs
// as a ⌈log2(n+1)⌉-bit binary number (LSB first), built from full/half
// adders over a counter tree.
func PopCount(n int) *Circuit {
	c := New(n)
	// Column-based reduction: columns[w] holds signals of weight 2^w.
	columns := [][]int{{}}
	for i := 0; i < n; i++ {
		columns[0] = append(columns[0], i)
	}
	for w := 0; w < len(columns); w++ {
		for len(columns[w]) > 1 {
			col := columns[w]
			if len(columns) == w+1 {
				columns = append(columns, nil)
			}
			if len(col) >= 3 {
				a, b, cin := col[0], col[1], col[2]
				columns[w] = col[3:]
				sum := c.AddGate(Xor, a, b, cin)
				maj1 := c.AddGate(And, a, b)
				maj2 := c.AddGate(And, a, cin)
				maj3 := c.AddGate(And, b, cin)
				carry := c.AddGate(Or, maj1, maj2, maj3)
				columns[w] = append(columns[w], sum)
				columns[w+1] = append(columns[w+1], carry)
			} else {
				a, b := col[0], col[1]
				columns[w] = col[2:]
				sum := c.AddGate(Xor, a, b)
				carry := c.AddGate(And, a, b)
				columns[w] = append(columns[w], sum)
				columns[w+1] = append(columns[w+1], carry)
			}
		}
	}
	for _, col := range columns {
		if len(col) == 1 {
			c.MarkOutput(col[0])
		} else {
			c.MarkOutput(c.AddGate(ConstFalse))
		}
	}
	return c
}

// ALUSlice returns a 1-bit ALU slice: inputs a, b, carry-in, and two
// opcode bits (op0, op1); outputs result and carry-out. Operations:
// 00 = AND, 01 = OR, 10 = XOR, 11 = ADD (a+b+cin).
func ALUSlice() *Circuit {
	c := New(5)
	const (
		a, b, cin, op0, op1 = 0, 1, 2, 3, 4
	)
	and := c.AddGate(And, a, b)
	or := c.AddGate(Or, a, b)
	xor := c.AddGate(Xor, a, b)
	sum := c.AddGate(Xor, a, b, cin)
	// carry-out for ADD: majority(a, b, cin).
	m1 := c.AddGate(And, a, b)
	m2 := c.AddGate(And, a, cin)
	m3 := c.AddGate(And, b, cin)
	carry := c.AddGate(Or, m1, m2, m3)

	nop0 := c.AddGate(Not, op0)
	nop1 := c.AddGate(Not, op1)
	selAnd := c.AddGate(And, nop1, nop0)
	selOr := c.AddGate(And, nop1, op0)
	selXor := c.AddGate(And, op1, nop0)
	selAdd := c.AddGate(And, op1, op0)

	result := c.AddGate(Or,
		c.AddGate(And, selAnd, and),
		c.AddGate(And, selOr, or),
		c.AddGate(And, selXor, xor),
		c.AddGate(And, selAdd, sum),
	)
	c.MarkOutput(result)
	c.MarkOutput(c.AddGate(And, selAdd, carry))
	return c
}
