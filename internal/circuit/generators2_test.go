package circuit

import (
	"math/bits"
	"testing"

	"obddopt/internal/core"
	"obddopt/internal/funcs"
)

func TestPriorityEncoder(t *testing.T) {
	for _, n := range []int{2, 4, 5, 8} {
		c := PriorityEncoder(n)
		outBits := 0
		for 1<<uint(outBits) < n {
			outBits++
		}
		if len(c.Outputs) != outBits+1 {
			t.Fatalf("n=%d: %d outputs, want %d", n, len(c.Outputs), outBits+1)
		}
		for idx := uint64(0); idx < 1<<uint(n); idx++ {
			x := make([]bool, n)
			for i := 0; i < n; i++ {
				x[i] = idx>>uint(i)&1 == 1
			}
			out := c.Eval(x)
			valid := out[outBits]
			if valid != (idx != 0) {
				t.Fatalf("n=%d idx=%b: valid=%v", n, idx, valid)
			}
			if idx == 0 {
				continue
			}
			wantIdx := bits.TrailingZeros64(idx)
			for b := 0; b < outBits; b++ {
				if out[b] != (wantIdx>>uint(b)&1 == 1) {
					t.Fatalf("n=%d idx=%b: encoded bit %d wrong", n, idx, b)
				}
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Errorf("n=1 did not panic")
		}
	}()
	PriorityEncoder(1)
}

func TestGrayConvertersInverse(t *testing.T) {
	for _, n := range []int{2, 3, 5} {
		g2b := GrayToBinary(n)
		b2g := BinaryToGray(n)
		for v := uint64(0); v < 1<<uint(n); v++ {
			x := make([]bool, n)
			for i := 0; i < n; i++ {
				x[i] = v>>uint(i)&1 == 1
			}
			gray := b2g.Eval(x)
			// Standard Gray code of v is v ^ (v >> 1).
			want := v ^ (v >> 1)
			for i := 0; i < n; i++ {
				if gray[i] != (want>>uint(i)&1 == 1) {
					t.Fatalf("n=%d v=%d: gray bit %d wrong", n, v, i)
				}
			}
			back := g2b.Eval(gray)
			for i := 0; i < n; i++ {
				if back[i] != x[i] {
					t.Fatalf("n=%d v=%d: converters not inverse at bit %d", n, v, i)
				}
			}
		}
	}
}

func TestPopCount(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 7, 8} {
		c := PopCount(n)
		for idx := uint64(0); idx < 1<<uint(n); idx++ {
			x := make([]bool, n)
			for i := 0; i < n; i++ {
				x[i] = idx>>uint(i)&1 == 1
			}
			out := c.Eval(x)
			var got uint64
			for i, v := range out {
				if v {
					got |= 1 << uint(i)
				}
			}
			if got != uint64(bits.OnesCount64(idx)) {
				t.Fatalf("n=%d idx=%b: popcount %d, want %d", n, idx, got, bits.OnesCount64(idx))
			}
		}
	}
}

func TestPopCountMatchesWeightMTBDD(t *testing.T) {
	// PopCount's outputs jointly encode funcs.Weight: cross-check by
	// building the multi-valued function from the bits.
	n := 5
	c := PopCount(n)
	w := funcs.Weight(n)
	for idx := uint64(0); idx < 1<<uint(n); idx++ {
		x := make([]bool, n)
		for i := 0; i < n; i++ {
			x[i] = idx>>uint(i)&1 == 1
		}
		out := c.Eval(x)
		var got int
		for i, v := range out {
			if v {
				got |= 1 << uint(i)
			}
		}
		if got != w.At(idx) {
			t.Fatalf("popcount disagrees with Weight at %b", idx)
		}
	}
}

func TestALUSlice(t *testing.T) {
	c := ALUSlice()
	for idx := 0; idx < 32; idx++ {
		x := make([]bool, 5)
		for i := 0; i < 5; i++ {
			x[i] = idx>>uint(i)&1 == 1
		}
		a, b, cin := x[0], x[1], x[2]
		op := 0
		if x[3] {
			op |= 1
		}
		if x[4] {
			op |= 2
		}
		out := c.Eval(x)
		var wantR, wantC bool
		switch op {
		case 0:
			wantR = a && b
		case 1:
			wantR = a || b
		case 2:
			wantR = a != b
		case 3:
			s := btoi(a) + btoi(b) + btoi(cin)
			wantR = s%2 == 1
			wantC = s >= 2
		}
		if out[0] != wantR || out[1] != wantC {
			t.Fatalf("op=%d a=%v b=%v cin=%v: got %v", op, a, b, cin, out)
		}
	}
}

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}

func TestControlCircuitsSharedOptimization(t *testing.T) {
	// The shared-forest DP handles the new multi-output workloads.
	c := PriorityEncoder(4)
	all := c.AllOutputTables()
	res := core.OptimalOrderingShared(all, nil)
	if res.Roots != len(c.Outputs) || res.MinCost == 0 {
		t.Fatalf("shared optimization of priority encoder: %+v", res)
	}
	if got := core.SharedSizeUnder(all, res.Ordering, core.OBDD); got != res.Size {
		t.Fatalf("shared result not realized")
	}
}
