package circuit

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"obddopt/internal/bdd"
	"obddopt/internal/core"
	"obddopt/internal/funcs"
	"obddopt/internal/truthtable"
)

func TestAddGateAndEval(t *testing.T) {
	c := New(2)
	and := c.AddGate(And, 0, 1)
	not := c.AddGate(Not, and)
	c.MarkOutput(and)
	c.MarkOutput(not)
	out := c.Eval([]bool{true, true})
	if !out[0] || out[1] {
		t.Errorf("eval wrong: %v", out)
	}
	out = c.Eval([]bool{true, false})
	if out[0] || !out[1] {
		t.Errorf("eval wrong: %v", out)
	}
}

func TestGateKinds(t *testing.T) {
	c := New(3)
	sigs := map[string]int{
		"and":  c.AddGate(And, 0, 1, 2),
		"or":   c.AddGate(Or, 0, 1, 2),
		"xor":  c.AddGate(Xor, 0, 1, 2),
		"nand": c.AddGate(Nand, 0, 1),
		"nor":  c.AddGate(Nor, 0, 1),
		"not":  c.AddGate(Not, 0),
		"c0":   c.AddGate(ConstFalse),
		"c1":   c.AddGate(ConstTrue),
	}
	for name, sig := range sigs {
		c.MarkOutput(sig)
		_ = name
	}
	x := []bool{true, false, true}
	vals := map[string]bool{
		"and": false, "or": true, "xor": false,
		"nand": true, "nor": false, "not": false, "c0": false, "c1": true,
	}
	out := c.Eval(x)
	i := 0
	for name, sig := range sigs {
		_ = sig
		_ = name
		i++
	}
	// Outputs were marked in map order; re-check via OutputTable instead.
	_ = out
	for name, sig := range sigs {
		got := truthtable.FromFunc(3, func(x []bool) bool {
			vals := make([]bool, c.NumSignals())
			copy(vals, x)
			for gi, g := range c.Gates {
				vals[c.NumInputs+gi] = evalGate(g, vals)
			}
			return vals[sig]
		})
		if got.Eval(x) != vals[name] {
			t.Errorf("%s on %v = %v, want %v", name, x, got.Eval(x), vals[name])
		}
	}
}

func TestAddGatePanics(t *testing.T) {
	c := New(2)
	for name, fn := range map[string]func(){
		"not arity":   func() { c.AddGate(Not, 0, 1) },
		"const arity": func() { c.AddGate(ConstTrue, 0) },
		"and arity":   func() { c.AddGate(And, 0) },
		"range":       func() { c.AddGate(And, 0, 9) },
		"output":      func() { c.MarkOutput(17) },
		"eval len":    func() { c.Eval([]bool{true}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestRippleCarryAdderMatchesFuncs(t *testing.T) {
	for bits := 1; bits <= 3; bits++ {
		c := RippleCarryAdder(bits)
		if len(c.Outputs) != bits+1 {
			t.Fatalf("bits=%d: %d outputs", bits, len(c.Outputs))
		}
		for i := 0; i < bits; i++ {
			if !c.OutputTable(i).Equal(funcs.AdderSumBit(bits, i)) {
				t.Errorf("bits=%d sum bit %d wrong", bits, i)
			}
		}
		if !c.OutputTable(bits).Equal(funcs.AdderCarry(bits)) {
			t.Errorf("bits=%d carry wrong", bits)
		}
	}
}

func TestCarrySelectAdderEquivalent(t *testing.T) {
	for bits := 1; bits <= 3; bits++ {
		rc := RippleCarryAdder(bits)
		cs := CarrySelectAdder(bits)
		for i := 0; i <= bits; i++ {
			if !rc.OutputTable(i).Equal(cs.OutputTable(i)) {
				t.Errorf("bits=%d output %d differs between adder implementations", bits, i)
			}
		}
	}
}

func TestComparatorGT(t *testing.T) {
	for bits := 1; bits <= 3; bits++ {
		if !ComparatorGT(bits).OutputTable(0).Equal(funcs.Comparator(bits)) {
			t.Errorf("bits=%d comparator wrong", bits)
		}
	}
}

func TestParityTree(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		if !ParityTree(n).OutputTable(0).Equal(funcs.Parity(n)) {
			t.Errorf("n=%d parity tree wrong", n)
		}
	}
}

func TestMuxTree(t *testing.T) {
	for sel := 1; sel <= 2; sel++ {
		if !MuxTree(sel).OutputTable(0).Equal(funcs.Multiplexer(sel)) {
			t.Errorf("sel=%d mux tree wrong", sel)
		}
	}
}

func TestToBDDMatchesOutputTable(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	c := RippleCarryAdder(3)
	for i := range c.Outputs {
		m := bdd.New(c.NumInputs, truthtable.RandomOrdering(c.NumInputs, rng))
		node := c.ToBDD(m, i)
		if !m.ToTruthTable(node).Equal(c.OutputTable(i)) {
			t.Errorf("ToBDD output %d differs from simulation", i)
		}
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	c := RippleCarryAdder(2)
	var buf bytes.Buffer
	if err := c.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if back.NumInputs != c.NumInputs || len(back.Gates) != len(c.Gates) || len(back.Outputs) != len(c.Outputs) {
		t.Fatalf("shape mismatch after round trip")
	}
	for i := range c.Outputs {
		if !back.OutputTable(i).Equal(c.OutputTable(i)) {
			t.Errorf("output %d changed in round trip", i)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := map[string]string{
		"empty":         "",
		"gate first":    "2 = and 0 1\n",
		"dup inputs":    "inputs 2\ninputs 2\n",
		"bad count":     "inputs -1\n",
		"bad kind":      "inputs 2\n2 = frob 0 1\n",
		"bad sig":       "inputs 2\n7 = and 0 1\n",
		"bad input":     "inputs 2\n2 = and 0 9\n",
		"bad output":    "inputs 2\noutputs 5\n",
		"outputs first": "outputs 0\n",
		"format":        "inputs 2\n2 and 0 1\n",
	}
	for name, src := range bad {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("%s: Parse succeeded on %q", name, src)
		}
	}
}

func TestParseCommentsAndBlanks(t *testing.T) {
	src := "# adder\ninputs 2\n\n2 = and 0 1\noutputs 2\n"
	c, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !c.OutputTable(0).Equal(truthtable.Var(2, 0).And(truthtable.Var(2, 1))) {
		t.Errorf("parsed circuit wrong")
	}
}

func TestCorollary2CircuitPath(t *testing.T) {
	// E11: the optimum computed from the circuit representation equals
	// the one from funcs' direct truth table.
	c := ComparatorGT(2)
	viaCircuit := core.OptimalOrdering(c.OutputTable(0), nil)
	direct := core.OptimalOrdering(funcs.Comparator(2), nil)
	if viaCircuit.MinCost != direct.MinCost {
		t.Errorf("circuit path optimum %d != direct %d", viaCircuit.MinCost, direct.MinCost)
	}
}
