// Package circuit implements gate-level combinational netlists: the VLSI
// workload representation the papers' introduction motivates. Circuits can
// be simulated, compiled to truth tables (the O*(2^n) preparation of
// Corollary 2), or compiled structurally into BDD nodes for the
// equivalence-checking example. Generators for ripple-carry adders,
// comparators, parity trees and multiplexer trees provide the benchmark
// netlists.
package circuit

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"obddopt/internal/bdd"
	"obddopt/internal/truthtable"
)

// Kind enumerates gate types.
type Kind byte

// Gate kinds. Input signals are implicit (indices below NumInputs) and
// have no Gate entry.
const (
	Not Kind = iota
	And
	Or
	Xor
	Nand
	Nor
	ConstFalse
	ConstTrue
)

var kindNames = map[Kind]string{
	Not: "not", And: "and", Or: "or", Xor: "xor",
	Nand: "nand", Nor: "nor", ConstFalse: "const0", ConstTrue: "const1",
}

var kindByName = func() map[string]Kind {
	m := map[string]Kind{}
	for k, n := range kindNames {
		m[n] = k
	}
	return m
}()

// Gate is one netlist gate. Inputs reference signal indices, which must be
// strictly smaller than the gate's own signal index (the netlist is
// topologically ordered by construction).
type Gate struct {
	Kind Kind
	Ins  []int
}

// Circuit is a combinational netlist. Signal indices 0 … NumInputs−1 are
// the primary inputs; signal NumInputs+i is the output of Gates[i].
type Circuit struct {
	NumInputs int
	Gates     []Gate
	Outputs   []int
}

// New returns an empty circuit with n primary inputs.
func New(n int) *Circuit { return &Circuit{NumInputs: n} }

// NumSignals returns the total number of signals.
func (c *Circuit) NumSignals() int { return c.NumInputs + len(c.Gates) }

// AddGate appends a gate and returns its signal index. It panics if an
// input reference is out of range or non-topological, or if the arity is
// wrong for the kind (Not: 1; constants: 0; others: ≥ 2).
func (c *Circuit) AddGate(kind Kind, ins ...int) int {
	switch kind {
	case Not:
		if len(ins) != 1 {
			panic("circuit: NOT takes exactly one input")
		}
	case ConstFalse, ConstTrue:
		if len(ins) != 0 {
			panic("circuit: constants take no inputs")
		}
	default:
		if len(ins) < 2 {
			panic("circuit: binary gates take at least two inputs")
		}
	}
	for _, in := range ins {
		if in < 0 || in >= c.NumSignals() {
			panic(fmt.Sprintf("circuit: input signal %d out of range", in))
		}
	}
	c.Gates = append(c.Gates, Gate{Kind: kind, Ins: append([]int{}, ins...)})
	return c.NumSignals() - 1
}

// MarkOutput registers a signal as a primary output and returns its output
// position.
func (c *Circuit) MarkOutput(sig int) int {
	if sig < 0 || sig >= c.NumSignals() {
		panic("circuit: output signal out of range")
	}
	c.Outputs = append(c.Outputs, sig)
	return len(c.Outputs) - 1
}

// Eval simulates the circuit on a primary-input assignment and returns the
// primary-output values.
func (c *Circuit) Eval(x []bool) []bool {
	if len(x) != c.NumInputs {
		panic("circuit: Eval input length mismatch")
	}
	vals := make([]bool, c.NumSignals())
	copy(vals, x)
	for i, g := range c.Gates {
		vals[c.NumInputs+i] = evalGate(g, vals)
	}
	out := make([]bool, len(c.Outputs))
	for i, o := range c.Outputs {
		out[i] = vals[o]
	}
	return out
}

func evalGate(g Gate, vals []bool) bool {
	switch g.Kind {
	case Not:
		return !vals[g.Ins[0]]
	case ConstFalse:
		return false
	case ConstTrue:
		return true
	case And, Nand:
		acc := true
		for _, in := range g.Ins {
			acc = acc && vals[in]
		}
		if g.Kind == Nand {
			return !acc
		}
		return acc
	case Or, Nor:
		acc := false
		for _, in := range g.Ins {
			acc = acc || vals[in]
		}
		if g.Kind == Nor {
			return !acc
		}
		return acc
	case Xor:
		acc := false
		for _, in := range g.Ins {
			acc = acc != vals[in]
		}
		return acc
	}
	panic("circuit: unknown gate kind")
}

// OutputTable compiles primary output i to a truth table over the primary
// inputs (2^n simulations — the Corollary 2 preparation step).
func (c *Circuit) OutputTable(i int) *truthtable.Table {
	if i < 0 || i >= len(c.Outputs) {
		panic("circuit: output index out of range")
	}
	return truthtable.FromFunc(c.NumInputs, func(x []bool) bool {
		return c.Eval(x)[i]
	})
}

// AllOutputTables compiles every primary output to its truth table — the
// input of the shared-forest optimizer.
func (c *Circuit) AllOutputTables() []*truthtable.Table {
	out := make([]*truthtable.Table, len(c.Outputs))
	for i := range out {
		out[i] = c.OutputTable(i)
	}
	return out
}

// ToBDD compiles primary output i structurally into the manager m (one
// apply per gate) — polynomial in diagram sizes rather than always 2^n.
func (c *Circuit) ToBDD(m *bdd.Manager, i int) bdd.Node {
	if m.NumVars() != c.NumInputs {
		panic("circuit: manager variable count mismatch")
	}
	nodes := make([]bdd.Node, c.NumSignals())
	for v := 0; v < c.NumInputs; v++ {
		nodes[v] = m.Var(v)
	}
	for gi, g := range c.Gates {
		var n bdd.Node
		switch g.Kind {
		case Not:
			n = m.Not(nodes[g.Ins[0]])
		case ConstFalse:
			n = bdd.False
		case ConstTrue:
			n = bdd.True
		case And, Nand:
			n = nodes[g.Ins[0]]
			for _, in := range g.Ins[1:] {
				n = m.And(n, nodes[in])
			}
			if g.Kind == Nand {
				n = m.Not(n)
			}
		case Or, Nor:
			n = nodes[g.Ins[0]]
			for _, in := range g.Ins[1:] {
				n = m.Or(n, nodes[in])
			}
			if g.Kind == Nor {
				n = m.Not(n)
			}
		case Xor:
			n = nodes[g.Ins[0]]
			for _, in := range g.Ins[1:] {
				n = m.Xor(n, nodes[in])
			}
		}
		nodes[c.NumInputs+gi] = n
	}
	return nodes[c.Outputs[i]]
}

// Write serializes the circuit in the package's line format:
//
//	inputs <n>
//	<sig> = <kind> <in> <in> …
//	outputs <sig> <sig> …
func (c *Circuit) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "inputs %d\n", c.NumInputs)
	for i, g := range c.Gates {
		fmt.Fprintf(bw, "%d = %s", c.NumInputs+i, kindNames[g.Kind])
		for _, in := range g.Ins {
			fmt.Fprintf(bw, " %d", in)
		}
		fmt.Fprintln(bw)
	}
	fmt.Fprint(bw, "outputs")
	for _, o := range c.Outputs {
		fmt.Fprintf(bw, " %d", o)
	}
	fmt.Fprintln(bw)
	return bw.Flush()
}

// Parse reads the format written by Write. Lines starting with '#' are
// comments.
func Parse(r io.Reader) (*Circuit, error) {
	sc := bufio.NewScanner(r)
	var c *Circuit
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch {
		case fields[0] == "inputs":
			if c != nil {
				return nil, fmt.Errorf("circuit: line %d: duplicate inputs declaration", lineNo)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("circuit: line %d: inputs takes one count", lineNo)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("circuit: line %d: bad input count %q", lineNo, fields[1])
			}
			c = New(n)
		case fields[0] == "outputs":
			if c == nil {
				return nil, fmt.Errorf("circuit: line %d: outputs before inputs", lineNo)
			}
			for _, f := range fields[1:] {
				sig, err := strconv.Atoi(f)
				if err != nil || sig < 0 || sig >= c.NumSignals() {
					return nil, fmt.Errorf("circuit: line %d: bad output signal %q", lineNo, f)
				}
				c.MarkOutput(sig)
			}
		default:
			if c == nil {
				return nil, fmt.Errorf("circuit: line %d: gate before inputs", lineNo)
			}
			if len(fields) < 3 || fields[1] != "=" {
				return nil, fmt.Errorf("circuit: line %d: expected '<sig> = <kind> <ins…>'", lineNo)
			}
			sig, err := strconv.Atoi(fields[0])
			if err != nil || sig != c.NumSignals() {
				return nil, fmt.Errorf("circuit: line %d: gate signals must be consecutive (want %d)", lineNo, c.NumSignals())
			}
			kind, ok := kindByName[fields[2]]
			if !ok {
				return nil, fmt.Errorf("circuit: line %d: unknown gate kind %q", lineNo, fields[2])
			}
			var ins []int
			for _, f := range fields[3:] {
				in, err := strconv.Atoi(f)
				if err != nil || in < 0 || in >= c.NumSignals() {
					return nil, fmt.Errorf("circuit: line %d: bad input %q", lineNo, f)
				}
				ins = append(ins, in)
			}
			func() {
				defer func() {
					if p := recover(); p != nil {
						err = fmt.Errorf("circuit: line %d: %v", lineNo, p)
					}
				}()
				c.AddGate(kind, ins...)
			}()
			if err != nil {
				return nil, err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if c == nil {
		return nil, fmt.Errorf("circuit: empty description")
	}
	return c, nil
}
