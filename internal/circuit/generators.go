package circuit

// Generators for the benchmark netlists. Input layout for two-operand
// circuits matches internal/funcs: signals 0..bits−1 are operand a (LSB
// first), bits..2·bits−1 operand b.

// RippleCarryAdder returns a bits-wide ripple-carry adder with bits+1
// outputs: sum bits 0..bits−1 and the carry-out.
func RippleCarryAdder(bits int) *Circuit {
	c := New(2 * bits)
	carry := -1 // no carry-in
	for i := 0; i < bits; i++ {
		a, b := i, bits+i
		axb := c.AddGate(Xor, a, b)
		ab := c.AddGate(And, a, b)
		if carry < 0 {
			c.MarkOutput(axb) // sum bit 0
			carry = ab
			continue
		}
		sum := c.AddGate(Xor, axb, carry)
		c.MarkOutput(sum)
		carryAnd := c.AddGate(And, axb, carry)
		carry = c.AddGate(Or, ab, carryAnd)
	}
	c.MarkOutput(carry)
	return c
}

// CarrySelectAdder returns a structurally different bits-wide adder (each
// stage computed for both carry values and selected) with the same
// input/output contract as RippleCarryAdder — the equivalence-checking
// counterpart.
func CarrySelectAdder(bits int) *Circuit {
	c := New(2 * bits)
	carry := c.AddGate(ConstFalse)
	for i := 0; i < bits; i++ {
		a, b := i, bits+i
		axb := c.AddGate(Xor, a, b)
		// sum with carry-in 0 is axb; with carry-in 1 is !axb.
		naxb := c.AddGate(Not, axb)
		// Select on the actual carry: sum = carry ? !axb : axb.
		carryAndN := c.AddGate(And, carry, naxb)
		ncarry := c.AddGate(Not, carry)
		ncarryAnd := c.AddGate(And, ncarry, axb)
		sum := c.AddGate(Or, carryAndN, ncarryAnd)
		c.MarkOutput(sum)
		// carry-out = ab | carry·(a ⊕ b).
		ab := c.AddGate(And, a, b)
		prop := c.AddGate(And, carry, axb)
		carry = c.AddGate(Or, ab, prop)
	}
	c.MarkOutput(carry)
	return c
}

// ComparatorGT returns a bits-wide magnitude comparator computing [a > b].
func ComparatorGT(bits int) *Circuit {
	c := New(2 * bits)
	// Process from MSB down: gt_i = gt_{i+1} | (eq_above & a_i & !b_i).
	gt := c.AddGate(ConstFalse)
	eq := c.AddGate(ConstTrue)
	for i := bits - 1; i >= 0; i-- {
		a, b := i, bits+i
		nb := c.AddGate(Not, b)
		na := c.AddGate(Not, a)
		aGTb := c.AddGate(And, a, nb)
		term := c.AddGate(And, eq, aGTb)
		gt = c.AddGate(Or, gt, term)
		xnor := c.AddGate(Or, c.AddGate(And, a, b), c.AddGate(And, na, nb))
		eq = c.AddGate(And, eq, xnor)
	}
	c.MarkOutput(gt)
	return c
}

// ParityTree returns an n-input XOR tree.
func ParityTree(n int) *Circuit {
	c := New(n)
	sigs := make([]int, n)
	for i := range sigs {
		sigs[i] = i
	}
	for len(sigs) > 1 {
		var next []int
		for i := 0; i+1 < len(sigs); i += 2 {
			next = append(next, c.AddGate(Xor, sigs[i], sigs[i+1]))
		}
		if len(sigs)%2 == 1 {
			next = append(next, sigs[len(sigs)-1])
		}
		sigs = next
	}
	c.MarkOutput(sigs[0])
	return c
}

// MuxTree returns the 2^sel-way multiplexer netlist matching
// funcs.Multiplexer's variable layout (selects first, then data).
func MuxTree(sel int) *Circuit {
	data := 1 << uint(sel)
	c := New(sel + data)
	// cur holds the surviving data signals after conditioning on each
	// select bit in turn.
	cur := make([]int, data)
	for i := range cur {
		cur[i] = sel + i
	}
	for s := 0; s < sel; s++ {
		ns := c.AddGate(Not, s)
		next := make([]int, len(cur)/2)
		for i := range next {
			lo, hi := cur[2*i], cur[2*i+1]
			// Data index bit s selects between consecutive pairs…
			// careful: data index bit s corresponds to stride 2^s; with
			// pairing of stride 1 at step 0 this matches LSB-first.
			t0 := c.AddGate(And, ns, lo)
			t1 := c.AddGate(And, s, hi)
			next[i] = c.AddGate(Or, t0, t1)
		}
		cur = next
	}
	c.MarkOutput(cur[0])
	return c
}
