// Package cache is the canonical solve-result cache behind the network
// service (internal/server): a sharded, byte-size-bounded LRU keyed by a
// canonical digest of the problem, with single-flight coalescing so
// concurrent identical requests run the underlying computation once.
//
// The cache stores only canonical values — results whose derivation is a
// pure function of the key (for the solve service: proven-optimal
// results of (truth-table, rule, exactness class), which every exact
// solver agrees on) — so a hit is always a correct answer regardless of
// which request populated it. Hit/miss/evict/coalesce counts accumulate
// both per cache (Stats) and in the process-wide internal/obs expvar
// registry, so /debug/vars shows live cache effectiveness.
package cache

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"obddopt/internal/obs"
)

// cacheLookupHist distributes lookup latencies (hit or miss) — the
// microsecond fast path the service's repeat-query contract rests on.
var cacheLookupHist = obs.Hist(obs.HistNameCacheLookup)

// numShards spreads keys over independently locked shards; a power of
// two so the digest's low bits select the shard uniformly.
const numShards = 16

// The value classes of the canonical result store. A class names the
// contract of the stored value, so different families of values for the
// same (table, rule) never collide under one digest.
const (
	// ClassExact stores *core.Result proven-optimal solve outcomes.
	ClassExact = "exact"
	// ClassArtifact stores []byte encoded OBDD artifacts
	// (internal/artifact) of the function under its proven-optimal
	// ordering.
	ClassArtifact = "artifact"
)

// Key returns the canonical digest of a problem: a fixed-length hex
// string over (table, rule, class). table is the truth-table literal in
// canonical "n:hexdigits" form, rule names the diagram variant, and
// class names the exactness contract of the cached value ("exact" for
// proven-optimal solves) — the class keeps future value families
// (shared forests, heuristic incumbents) from colliding with exact
// results under the same table.
func Key(table, rule, class string) string {
	h := sha256.New()
	fmt.Fprintf(h, "%d:%s|%d:%s|%d:%s", len(table), table, len(rule), rule, len(class), class)
	return hex.EncodeToString(h.Sum(nil))
}

// Stats is a point-in-time snapshot of one cache's counters.
type Stats struct {
	// Hits counts lookups answered from a stored entry.
	Hits uint64 `json:"hits"`
	// Misses counts lookups that ran the compute function.
	Misses uint64 `json:"misses"`
	// Coalesced counts lookups that waited on an identical in-flight
	// computation instead of starting their own (single-flight).
	Coalesced uint64 `json:"coalesced"`
	// Evictions counts entries displaced by the byte bound.
	Evictions uint64 `json:"evictions"`
	// Bytes is the current stored size; Entries the current entry count.
	Bytes   int64 `json:"bytes"`
	Entries int   `json:"entries"`
}

// Cache is a sharded LRU of canonical results, bounded by total byte
// size and safe for concurrent use.
type Cache struct {
	shardBytes int64
	shards     [numShards]shard

	hits      atomic.Uint64
	misses    atomic.Uint64
	coalesced atomic.Uint64
	evictions atomic.Uint64
}

type shard struct {
	mu      sync.Mutex
	entries map[string]*entry
	lru     *list.List // front = most recently used; values are *entry
	flights map[string]*flight
	bytes   int64
}

type entry struct {
	key   string
	value any
	bytes int64
	elem  *list.Element
}

// flight is one in-progress computation; waiters block on done.
type flight struct {
	done chan struct{}
	val  any
	err  error
}

// New returns a cache bounded to roughly maxBytes of stored values
// (entry sizes are the caller's estimates). maxBytes <= 0 selects a
// 64 MiB default. The bound is enforced per shard, so a pathological
// key distribution can under-use up to (numShards-1)/numShards of it.
func New(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		maxBytes = 64 << 20
	}
	c := &Cache{shardBytes: (maxBytes + numShards - 1) / numShards}
	for i := range c.shards {
		c.shards[i].entries = make(map[string]*entry)
		c.shards[i].flights = make(map[string]*flight)
		c.shards[i].lru = list.New()
	}
	return c
}

// shardFor selects the shard by a cheap string hash; Key produces
// uniformly distributed digests, so any mixing of the bytes do.
func (c *Cache) shardFor(key string) *shard {
	var h uint
	for i := 0; i < len(key); i++ {
		h = h*31 + uint(key[i])
	}
	return &c.shards[h%numShards]
}

// Do returns the cached value for key, or runs compute to produce it.
// Concurrent Do calls with the same key coalesce: one runs compute, the
// rest wait for its outcome. compute returns the value, its byte-size
// estimate for the LRU bound, and an error; errors are never cached —
// they propagate to every coalesced waiter, and the next Do retries.
//
// If a coalesced computation fails while this caller's ctx is still
// live (the typical case: the owning request was canceled, the waiter
// was not), Do retries with this caller as the new owner rather than
// surfacing a cancellation the caller never asked for. The second
// return reports whether the value came from the cache (true) or from
// a compute run owned by, or coalesced with, this call (false).
func (c *Cache) Do(ctx context.Context, key string, compute func() (any, int64, error)) (any, bool, error) {
	s := c.shardFor(key)
	for {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		s.mu.Lock()
		if e, ok := s.entries[key]; ok {
			s.lru.MoveToFront(e.elem)
			s.mu.Unlock()
			c.hits.Add(1)
			obs.Metrics.CacheHits.Inc()
			return e.value, true, nil
		}
		if f, ok := s.flights[key]; ok {
			s.mu.Unlock()
			c.coalesced.Add(1)
			obs.Metrics.CacheCoalesced.Inc()
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
			if f.err == nil {
				return f.val, false, nil
			}
			// The owner failed; if our ctx is live the failure was the
			// owner's (deadline, budget), so loop and recompute as owner.
			continue
		}
		f := &flight{done: make(chan struct{})}
		s.flights[key] = f
		s.mu.Unlock()

		c.misses.Add(1)
		obs.Metrics.CacheMisses.Inc()
		val, bytes, err := compute()
		f.val, f.err = val, err

		s.mu.Lock()
		delete(s.flights, key)
		if err == nil {
			c.store(s, key, val, bytes)
		}
		s.mu.Unlock()
		close(f.done)
		return val, false, err
	}
}

// Get returns the cached value for key without computing on a miss. A
// hit counts toward Stats.Hits; a miss counts nothing, so a Get probe
// followed by Do (the server's fast-path pattern) records exactly one
// miss per computed entry.
func (c *Cache) Get(key string) (any, bool) {
	start := time.Now()
	defer func() { cacheLookupHist.RecordDuration(time.Since(start)) }() //lint:allow tracesafe cacheLookupHist caches obs.Hist, which never returns nil; re-resolving per Get would put a registry lock on the lookup fast path
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok {
		return nil, false
	}
	s.lru.MoveToFront(e.elem)
	c.hits.Add(1)
	obs.Metrics.CacheHits.Inc()
	return e.value, true
}

// Put stores value under key unconditionally (replacing any previous
// entry), evicting least-recently-used entries to fit the byte bound.
func (c *Cache) Put(key string, value any, bytes int64) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	c.store(s, key, value, bytes)
}

// store inserts or replaces under s.mu.
func (c *Cache) store(s *shard, key string, value any, bytes int64) {
	if bytes < 1 {
		bytes = 1
	}
	if bytes > c.shardBytes {
		// An entry larger than a whole shard would evict everything and
		// still not fit; refuse it rather than thrash.
		return
	}
	if e, ok := s.entries[key]; ok {
		s.bytes += bytes - e.bytes
		e.value, e.bytes = value, bytes
		s.lru.MoveToFront(e.elem)
	} else {
		e := &entry{key: key, value: value, bytes: bytes}
		e.elem = s.lru.PushFront(e)
		s.entries[key] = e
		s.bytes += bytes
	}
	for s.bytes > c.shardBytes {
		oldest := s.lru.Back()
		if oldest == nil {
			break
		}
		victim := oldest.Value.(*entry)
		s.lru.Remove(oldest)
		delete(s.entries, victim.key)
		s.bytes -= victim.bytes
		c.evictions.Add(1)
		obs.Metrics.CacheEvictions.Inc()
	}
}

// Stats snapshots the cache's counters and current occupancy.
func (c *Cache) Stats() Stats {
	st := Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Coalesced: c.coalesced.Load(),
		Evictions: c.evictions.Load(),
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Bytes += s.bytes
		st.Entries += len(s.entries)
		s.mu.Unlock()
	}
	return st
}
