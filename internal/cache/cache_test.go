package cache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestKeyCanonical pins that the digest separates its fields: moving a
// byte between table and rule must change the key.
func TestKeyCanonical(t *testing.T) {
	if Key("4:8001", "obdd", "exact") == Key("4:800", "1obdd", "exact") {
		t.Error("field boundary not encoded in digest")
	}
	if Key("4:8001", "obdd", "exact") != Key("4:8001", "obdd", "exact") {
		t.Error("digest not deterministic")
	}
	if Key("4:8001", "obdd", "exact") == Key("4:8001", "zdd", "exact") {
		t.Error("rule not part of the key")
	}
	if Key("4:8001", "obdd", "exact") == Key("4:8001", "obdd", "shared") {
		t.Error("class not part of the key")
	}
}

// TestDoCachesAndHits verifies the basic miss-then-hit flow and the
// stats counters.
func TestDoCachesAndHits(t *testing.T) {
	c := New(1 << 20)
	ctx := context.Background()
	runs := 0
	compute := func() (any, int64, error) { runs++; return 42, 8, nil }

	v, cached, err := c.Do(ctx, Key("3:e8", "obdd", "exact"), compute)
	if err != nil || cached || v.(int) != 42 {
		t.Fatalf("first Do = %v, %v, %v", v, cached, err)
	}
	v, cached, err = c.Do(ctx, Key("3:e8", "obdd", "exact"), compute)
	if err != nil || !cached || v.(int) != 42 {
		t.Fatalf("second Do = %v, %v, %v", v, cached, err)
	}
	if runs != 1 {
		t.Errorf("compute ran %d times, want 1", runs)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / 1 entry", st)
	}
}

// TestDoDoesNotCacheErrors verifies a failed computation leaves no
// entry, so the next call retries.
func TestDoDoesNotCacheErrors(t *testing.T) {
	c := New(1 << 20)
	ctx := context.Background()
	boom := errors.New("boom")
	runs := 0
	if _, _, err := c.Do(ctx, "k", func() (any, int64, error) { runs++; return nil, 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if v, _, err := c.Do(ctx, "k", func() (any, int64, error) { runs++; return "ok", 2, nil }); err != nil || v != "ok" {
		t.Fatalf("retry = %v, %v", v, err)
	}
	if runs != 2 {
		t.Errorf("compute ran %d times, want 2", runs)
	}
}

// TestSingleFlight launches many concurrent identical lookups and
// requires exactly one compute run; the rest coalesce.
func TestSingleFlight(t *testing.T) {
	c := New(1 << 20)
	ctx := context.Background()
	var runs atomic.Int64
	release := make(chan struct{})
	compute := func() (any, int64, error) {
		runs.Add(1)
		<-release
		return "v", 4, nil
	}
	const workers = 32
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, err := c.Do(ctx, "same", compute)
			if err == nil && v != "v" {
				err = fmt.Errorf("v = %v", v)
			}
			errs <- err
		}()
	}
	// Let the goroutines pile onto the flight, then release the owner.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if n := runs.Load(); n != 1 {
		t.Errorf("compute ran %d times, want 1 (single-flight)", n)
	}
	if st := c.Stats(); st.Coalesced == 0 {
		t.Errorf("stats = %+v, want coalesced > 0", st)
	}
}

// TestCoalescedWaiterRetriesAfterOwnerFailure: the owning computation
// fails (as if its request was canceled) while a waiter with a live ctx
// is coalesced onto it; the waiter must become the new owner and get a
// real value, not the owner's failure.
func TestCoalescedWaiterRetriesAfterOwnerFailure(t *testing.T) {
	c := New(1 << 20)
	started := make(chan struct{})
	release := make(chan struct{})
	ownerErr := errors.New("owner canceled")

	go func() {
		c.Do(context.Background(), "k", func() (any, int64, error) {
			close(started)
			<-release
			return nil, 0, ownerErr
		})
	}()
	<-started
	done := make(chan struct{})
	var got any
	var err error
	go func() {
		defer close(done)
		got, _, err = c.Do(context.Background(), "k", func() (any, int64, error) {
			return "recomputed", 10, nil
		})
	}()
	time.Sleep(10 * time.Millisecond) // let the waiter coalesce
	close(release)
	<-done
	if err != nil || got != "recomputed" {
		t.Fatalf("waiter got %v, %v; want recomputed after owner failure", got, err)
	}
}

// TestDoRespectsWaiterContext: a waiter whose own ctx dies while
// coalesced returns its ctx error promptly.
func TestDoRespectsWaiterContext(t *testing.T) {
	c := New(1 << 20)
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	go func() {
		c.Do(context.Background(), "k", func() (any, int64, error) {
			close(started)
			<-release
			return "late", 4, nil
		})
	}()
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, _, err := c.Do(ctx, "k", func() (any, int64, error) { return nil, 0, nil })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

// TestEvictionByBytes fills one logical shard past its byte bound and
// verifies LRU order of eviction.
func TestEvictionByBytes(t *testing.T) {
	// numShards shards share the bound evenly; keep every entry in one
	// shard by using a single key prefix... keys hash arbitrarily, so
	// instead size the cache so each shard holds ~2 of our 100-byte
	// entries and verify global behavior: total bytes stay bounded and
	// evictions occur.
	c := New(numShards * 250)
	ctx := context.Background()
	for i := 0; i < 200; i++ {
		key := Key(fmt.Sprintf("t%d", i), "obdd", "exact")
		if _, _, err := c.Do(ctx, key, func() (any, int64, error) { return i, 100, nil }); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Bytes > numShards*250 {
		t.Errorf("bytes = %d, exceeds bound %d", st.Bytes, numShards*250)
	}
	if st.Evictions == 0 {
		t.Error("no evictions after overfilling")
	}
	if st.Entries == 0 {
		t.Error("cache empty after fill; eviction too aggressive")
	}
}

// TestOversizedEntryRefused: an entry bigger than a whole shard is not
// stored (it would evict everything and still not fit).
func TestOversizedEntryRefused(t *testing.T) {
	c := New(numShards * 100)
	c.Put("big", "x", 1<<20)
	if _, ok := c.Get("big"); ok {
		t.Error("oversized entry was stored")
	}
	c.Put("small", "y", 10)
	if _, ok := c.Get("small"); !ok {
		t.Error("small entry missing")
	}
}

// TestLRUOrder verifies that touching an entry protects it from
// eviction. All traffic goes through one shard by reusing Put/Get on
// keys routed to the same shard.
func TestLRUOrder(t *testing.T) {
	c := New(numShards * 30) // each shard holds 3 entries of 10 bytes
	s := c.shardFor("probe")
	// Find three keys landing in the same shard as each other.
	var keys []string
	for i := 0; len(keys) < 4; i++ {
		k := fmt.Sprintf("k%d", i)
		if c.shardFor(k) == s {
			keys = append(keys, k)
		}
	}
	c.Put(keys[0], 0, 10)
	c.Put(keys[1], 1, 10)
	c.Put(keys[2], 2, 10)
	if _, ok := c.Get(keys[0]); !ok { // refresh keys[0]
		t.Fatal("keys[0] missing before eviction")
	}
	c.Put(keys[3], 3, 10) // evicts the LRU entry: keys[1]
	if _, ok := c.Get(keys[1]); ok {
		t.Error("LRU entry survived eviction")
	}
	if _, ok := c.Get(keys[0]); !ok {
		t.Error("recently used entry was evicted")
	}
}

// TestConcurrentMixedLoad hammers the cache from many goroutines with
// overlapping keys; run under -race this is the data-race check.
func TestConcurrentMixedLoad(t *testing.T) {
	c := New(1 << 16)
	ctx := context.Background()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := Key(fmt.Sprintf("t%d", i%17), "obdd", "exact")
				v, _, err := c.Do(ctx, k, func() (any, int64, error) { return i % 17, 64, nil })
				if err != nil {
					t.Error(err)
					return
				}
				if v.(int) != i%17 {
					t.Errorf("wrong value %v for key %d", v, i%17)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestClassSeparation: the exact-result and artifact classes of the
// same (table, rule) are independent entries — storing one never
// shadows or overwrites the other.
func TestClassSeparation(t *testing.T) {
	c := New(1 << 20)
	ek := Key("4:8001", "obdd", ClassExact)
	ak := Key("4:8001", "obdd", ClassArtifact)
	if ek == ak {
		t.Fatal("exact and artifact classes share a key")
	}
	c.Put(ek, "result", 16)
	c.Put(ak, []byte{0x4f, 0x42, 0x44, 0x61}, 4)
	if v, ok := c.Get(ek); !ok || v.(string) != "result" {
		t.Errorf("exact entry = %v, %v", v, ok)
	}
	if v, ok := c.Get(ak); !ok || len(v.([]byte)) != 4 {
		t.Errorf("artifact entry = %v, %v", v, ok)
	}
	if st := c.Stats(); st.Entries != 2 || st.Bytes != 20 {
		t.Errorf("stats = %+v, want 2 entries / 20 bytes", st)
	}
}
