package dynbdd

import (
	"math/rand"
	"testing"

	"obddopt/internal/core"
	"obddopt/internal/funcs"
	"obddopt/internal/truthtable"
)

func TestBuildAndEval(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 1 + trial%6
		tt := truthtable.Random(n, rng)
		m := New(n, truthtable.RandomOrdering(n, rng))
		root := m.FromTruthTable(tt)
		if !m.ToTruthTable(root).Equal(tt) {
			t.Fatalf("round trip failed n=%d", n)
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("invariants after build: %v", err)
		}
	}
}

func TestWidthsMatchCoreProfile(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		n := 2 + trial%5
		tt := truthtable.Random(n, rng)
		ord := truthtable.RandomOrdering(n, rng)
		m := New(n, ord)
		root := m.FromTruthTable(tt)
		want := core.Profile(tt, ord, core.OBDD, nil)
		got := m.LevelWidths()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("level %d: %d != %d", i+1, got[i], want[i])
			}
		}
		if m.CountNodes(root) != m.TotalNodes() {
			t.Fatalf("reachable %d != live %d with single root", m.CountNodes(root), m.TotalNodes())
		}
	}
}

func TestRefDerefRecyclesNodes(t *testing.T) {
	m := New(4, nil)
	a := m.Var(0)
	b := m.Var(1)
	live := m.TotalNodes()
	if live != 2 {
		t.Fatalf("expected 2 live nodes, have %d", live)
	}
	m.Deref(a)
	m.Deref(b)
	if m.TotalNodes() != 0 {
		t.Fatalf("nodes not recycled: %d live", m.TotalNodes())
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("invariants after deref: %v", err)
	}
	// Slots are reused.
	before := len(m.nodes)
	_ = m.Var(2)
	if len(m.nodes) != before {
		t.Errorf("free list not reused: %d -> %d", before, len(m.nodes))
	}
}

func TestSwapPreservesFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		n := 2 + trial%6
		tt := truthtable.Random(n, rng)
		m := New(n, truthtable.RandomOrdering(n, rng))
		root := m.FromTruthTable(tt)
		for s := 0; s < 3*n; s++ {
			l := rng.Intn(n - 1)
			m.SwapLevels(l)
			if err := m.CheckInvariants(); err != nil {
				t.Fatalf("trial %d swap %d at level %d: %v", trial, s, l, err)
			}
		}
		if !m.ToTruthTable(root).Equal(tt) {
			t.Fatalf("trial %d: function changed after swaps", trial)
		}
		// After swapping, widths must still match the DP for the current
		// ordering.
		want := core.Profile(tt, m.Ordering(), core.OBDD, nil)
		got := m.LevelWidths()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: width mismatch after swaps at level %d: %d != %d",
					trial, i+1, got[i], want[i])
			}
		}
	}
}

func TestSwapIsInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 6
	tt := truthtable.Random(n, rng)
	m := New(n, nil)
	root := m.FromTruthTable(tt)
	before := m.TotalNodes()
	ordBefore := m.Ordering().Clone()
	m.SwapLevels(2)
	m.SwapLevels(2)
	if m.TotalNodes() != before {
		t.Errorf("double swap changed size: %d -> %d", before, m.TotalNodes())
	}
	for i := range ordBefore {
		if m.Ordering()[i] != ordBefore[i] {
			t.Fatalf("double swap changed ordering")
		}
	}
	if !m.ToTruthTable(root).Equal(tt) {
		t.Fatalf("double swap changed function")
	}
}

func TestSwapWithMultipleRoots(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 5
	t1, t2 := truthtable.Random(n, rng), truthtable.Random(n, rng)
	m := New(n, nil)
	r1 := m.FromTruthTable(t1)
	r2 := m.FromTruthTable(t2)
	for s := 0; s < 20; s++ {
		m.SwapLevels(rng.Intn(n - 1))
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	if !m.ToTruthTable(r1).Equal(t1) || !m.ToTruthTable(r2).Equal(t2) {
		t.Fatalf("multi-root swap corrupted a function")
	}
	// Deref one root; the other must stay intact.
	m.Deref(r1)
	if !m.ToTruthTable(r2).Equal(t2) {
		t.Fatalf("deref of sibling root corrupted survivor")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("invariants after deref: %v", err)
	}
}

func TestMoveVarToLevelAndSetOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 6
	tt := truthtable.Random(n, rng)
	m := New(n, nil)
	root := m.FromTruthTable(tt)
	target := truthtable.RandomOrdering(n, rng)
	m.SetOrder(target)
	got := m.Ordering()
	for i := range target {
		if got[i] != target[i] {
			t.Fatalf("SetOrder: got %v, want %v", got, target)
		}
	}
	if !m.ToTruthTable(root).Equal(tt) {
		t.Fatalf("SetOrder changed the function")
	}
	// Width check against the DP.
	want := core.Profile(tt, target, core.OBDD, nil)
	gotW := m.LevelWidths()
	for i := range want {
		if gotW[i] != want[i] {
			t.Fatalf("SetOrder width mismatch at level %d", i+1)
		}
	}
}

func TestSiftShrinksAchillesHeel(t *testing.T) {
	pairs := 4
	f := funcs.AchillesHeel(pairs)
	// Start from the pessimal blocked ordering (exponential size).
	m := New(2*pairs, funcs.BlockedOrdering(pairs))
	root := m.FromTruthTable(f)
	if m.TotalNodes() != uint64(1<<uint(pairs+1))-2 {
		t.Fatalf("blocked start size unexpected: %d", m.TotalNodes())
	}
	res := m.Sift(0)
	if res.Final != uint64(2*pairs) {
		t.Errorf("sift final %d, want optimal %d", res.Final, 2*pairs)
	}
	if res.Swaps == 0 || res.Final > res.Initial {
		t.Errorf("sift stats odd: %+v", res)
	}
	if !m.ToTruthTable(root).Equal(f) {
		t.Fatalf("sifting changed the function")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("invariants after sift: %v", err)
	}
}

func TestSiftNeverWorse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		n := 5 + trial%3
		tt := truthtable.Random(n, rng)
		m := New(n, truthtable.RandomOrdering(n, rng))
		root := m.FromTruthTable(tt)
		res := m.Sift(0)
		if res.Final > res.Initial {
			t.Fatalf("sift increased size: %+v", res)
		}
		opt := core.OptimalOrdering(tt, nil).MinCost
		if res.Final < opt {
			t.Fatalf("sift beat the exact optimum")
		}
		if !m.ToTruthTable(root).Equal(tt) {
			t.Fatalf("sift changed function")
		}
	}
}

func TestWindowPermute(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, w := range []int{2, 3, 4} {
		n := 6
		tt := truthtable.Random(n, rng)
		m := New(n, truthtable.RandomOrdering(n, rng))
		root := m.FromTruthTable(tt)
		res := m.WindowPermute(w)
		if res.Final > res.Initial {
			t.Fatalf("w=%d window increased size", w)
		}
		if !m.ToTruthTable(root).Equal(tt) {
			t.Fatalf("w=%d window changed function", w)
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("w=%d invariants: %v", w, err)
		}
	}
	defer func() {
		if recover() == nil {
			t.Errorf("bad window width did not panic")
		}
	}()
	New(3, nil).WindowPermute(7)
}

func TestExactReorder(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 8; trial++ {
		n := 5 + trial%3
		tt := truthtable.Random(n, rng)
		m := New(n, truthtable.RandomOrdering(n, rng))
		root := m.FromTruthTable(tt)
		res, opt := m.ExactReorder(root)
		if res.Final != opt.MinCost {
			t.Fatalf("exact reorder final %d != DP optimum %d", res.Final, opt.MinCost)
		}
		if !m.ToTruthTable(root).Equal(tt) {
			t.Fatalf("exact reorder changed the function")
		}
	}
}

func TestExactReorderBeatsOrMatchesSift(t *testing.T) {
	f := funcs.HiddenWeightedBit(8)
	m1 := New(8, nil)
	r1 := m1.FromTruthTable(f)
	sift := m1.Sift(0)
	m2 := New(8, nil)
	r2 := m2.FromTruthTable(f)
	_, opt := m2.ExactReorder(r2)
	_ = r1
	if opt.MinCost > sift.Final {
		t.Fatalf("exact %d worse than sift %d", opt.MinCost, sift.Final)
	}
}

func TestSwapCounterAndPanics(t *testing.T) {
	m := New(3, nil)
	if m.Swaps() != 0 {
		t.Errorf("fresh manager has swaps")
	}
	m.SwapLevels(0)
	if m.Swaps() != 1 {
		t.Errorf("swap counter not advancing")
	}
	for name, fn := range map[string]func(){
		"swap range":  func() { m.SwapLevels(2) },
		"swap neg":    func() { m.SwapLevels(-1) },
		"move range":  func() { m.MoveVarToLevel(0, 9) },
		"order bad":   func() { m.SetOrder(truthtable.Ordering{0, 0, 1}) },
		"var range":   func() { m.Var(3) },
		"eval length": func() { m.Eval(True, []bool{true}) },
		"tt vars":     func() { m.FromTruthTable(truthtable.New(5)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

// Property-style stress: long random interleavings of builds, derefs and
// swaps keep all invariants and all live functions intact.
func TestRandomizedStress(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	n := 6
	m := New(n, nil)
	type live struct {
		root Node
		tt   *truthtable.Table
	}
	var roots []live
	for step := 0; step < 300; step++ {
		switch op := rng.Intn(4); {
		case op == 0 && len(roots) < 6:
			tt := truthtable.Random(n, rng)
			roots = append(roots, live{m.FromTruthTable(tt), tt})
		case op == 1 && len(roots) > 0:
			i := rng.Intn(len(roots))
			m.Deref(roots[i].root)
			roots = append(roots[:i], roots[i+1:]...)
		default:
			m.SwapLevels(rng.Intn(n - 1))
		}
		if step%37 == 0 {
			if err := m.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("final invariants: %v", err)
	}
	for i, r := range roots {
		if !m.ToTruthTable(r.root).Equal(r.tt) {
			t.Fatalf("root %d function corrupted", i)
		}
	}
}
