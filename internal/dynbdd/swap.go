package dynbdd

import "fmt"

// SwapLevels exchanges the variables at root-first levels l and l+1 in
// place (Rudell's swap): node identities are preserved, so externally held
// roots remain valid and keep denoting the same functions; only the two
// affected levels are touched, costing time proportional to their size.
func (m *Manager) SwapLevels(l int) {
	if l < 0 || l+1 >= m.nvars {
		panic(fmt.Sprintf("dynbdd: SwapLevels level %d out of range", l))
	}
	m.swaps++
	lo32, hi32 := int32(l), int32(l+1)

	// Freeze slot recycling: nodes freed during this swap must keep their
	// freed state visible to the survivor sweep below.
	m.inSwap = true
	defer func() { m.inSwap = false }()

	// Snapshot the A-nodes (level l); install fresh tables for both
	// levels. The old level-l+1 table is swept at the end for surviving
	// B-nodes.
	oldL := make([]Node, 0, len(m.unique[l]))
	for _, n := range m.unique[l] {
		oldL = append(oldL, n)
	}
	oldL1 := m.unique[l+1]
	m.unique[l] = make(map[pairKey]Node, len(oldL))
	m.unique[l+1] = make(map[pairKey]Node, len(oldL1))

	// Phase 1: A-nodes independent of the variable below simply descend
	// to level l+1 (they keep testing A, which now lives there).
	var dependent []Node
	for _, u := range oldL {
		d := &m.nodes[u]
		if m.nodes[d.lo].level == hi32 || m.nodes[d.hi].level == hi32 {
			dependent = append(dependent, u)
			continue
		}
		d.level = hi32
		m.unique[l+1][pairKey{d.lo, d.hi}] = u
	}

	// Phase 2: rewrite each dependent A-node in place as a B-node at
	// level l whose children are (possibly fresh) A-nodes at level l+1.
	for _, u := range dependent {
		f0, f1 := m.nodes[u].lo, m.nodes[u].hi
		f00, f01 := m.cofactorsAtLevel(f0, hi32)
		f10, f11 := m.cofactorsAtLevel(f1, hi32)
		// mk may grow the node arena, so m.nodes must be re-indexed
		// (never held by pointer) across these calls.
		newLo := m.mk(hi32, f00, f10)
		newHi := m.mk(hi32, f01, f11)
		// Wire the new edges before releasing the old ones so shared
		// substructure cannot be freed mid-rewrite.
		m.incRef(newLo)
		m.incRef(newHi)
		m.nodes[u].lo, m.nodes[u].hi = newLo, newHi
		m.unique[l][pairKey{newLo, newHi}] = u
		m.decRef(f0)
		m.decRef(f1)
	}

	// Sweep the old level-l+1 table: surviving B-nodes (still referenced
	// from above or externally) ascend to level l.
	for _, w := range oldL1 {
		d := &m.nodes[w]
		if d.level != hi32 {
			continue // died during phase 2, or already rehomed
		}
		d.level = lo32
		m.unique[l][pairKey{d.lo, d.hi}] = w
	}

	// Finally swap the variable bookkeeping.
	a, b := m.varAtLevel[l], m.varAtLevel[l+1]
	m.varAtLevel[l], m.varAtLevel[l+1] = b, a
	m.levelOfVar[a], m.levelOfVar[b] = l+1, l
}

// cofactorsAtLevel splits f at the given level (both cofactors are f when
// f tests a deeper variable).
func (m *Manager) cofactorsAtLevel(f Node, level int32) (lo, hi Node) {
	d := m.nodes[f]
	if d.level == level {
		return d.lo, d.hi
	}
	return f, f
}

// MoveVarToLevel brings variable v to the given root-first level by a
// sequence of adjacent swaps and returns the number of swaps performed.
func (m *Manager) MoveVarToLevel(v, level int) int {
	if v < 0 || v >= m.nvars || level < 0 || level >= m.nvars {
		panic("dynbdd: MoveVarToLevel argument out of range")
	}
	n := 0
	for m.levelOfVar[v] > level {
		m.SwapLevels(m.levelOfVar[v] - 1)
		n++
	}
	for m.levelOfVar[v] < level {
		m.SwapLevels(m.levelOfVar[v])
		n++
	}
	return n
}
