// Package dynbdd is a dynamically reorderable shared-node BDD manager in
// the style of production packages (CUDD): reference-counted nodes held in
// per-level unique tables, the Rudell in-place adjacent-level swap, and on
// top of it sifting, window permutation, reordering to an arbitrary target
// ordering, and exact reordering driven by the Friedman–Supowit dynamic
// program. Where internal/bdd is an immutable engine (nodes never move),
// this package mutates diagrams in place so that reordering costs are
// proportional to the affected levels rather than to 2^n.
//
// The two engines deliberately share no code: dynbdd cross-checks bdd and
// core in the test suite (same functions, same sizes, same level
// profiles), giving three independent implementations of OBDD semantics.
package dynbdd

import (
	"fmt"

	"obddopt/internal/truthtable"
)

// Node identifies a node within a Manager. Terminals are False = 0 and
// True = 1. Node identities are stable across reordering: swaps rewrite
// node contents in place, so externally held Nodes stay valid and keep
// denoting the same function.
type Node uint32

// Terminal nodes.
const (
	False Node = 0
	True  Node = 1
)

type nodeData struct {
	level  int32 // current root-first level; nvars for terminals; -1 = free
	lo, hi Node
	ref    int32 // reference count (external refs + parent edges)
}

type pairKey struct{ lo, hi Node }

// Manager is a reorderable BDD node manager. Not safe for concurrent use.
type Manager struct {
	nvars      int
	varAtLevel []int
	levelOfVar []int
	nodes      []nodeData
	unique     []map[pairKey]Node // one unique table per level
	free       []Node             // recycled node slots
	// inSwap disables slot recycling while a level swap is in flight:
	// slots freed mid-swap must keep their freed state visible to the
	// swap's survivor sweep (a recycled slot would masquerade as a
	// surviving node).
	inSwap bool
	// swaps counts adjacent-level swaps performed (reordering effort).
	swaps uint64
}

// New returns a manager over n variables under the given bottom-up
// ordering (nil = variable 0 at the root).
func New(n int, order truthtable.Ordering) *Manager {
	if order == nil {
		order = truthtable.ReverseOrdering(n)
	}
	if len(order) != n || !order.Valid() {
		panic("dynbdd: ordering is not a permutation of the variables")
	}
	m := &Manager{
		nvars:      n,
		varAtLevel: order.RootFirst(),
		levelOfVar: make([]int, n),
		nodes: []nodeData{
			{level: int32(n), ref: 1}, // False, permanently referenced
			{level: int32(n), ref: 1}, // True
		},
		unique: make([]map[pairKey]Node, n),
	}
	for lvl, v := range m.varAtLevel {
		m.levelOfVar[v] = lvl
		m.unique[lvl] = map[pairKey]Node{}
	}
	return m
}

// NumVars returns the number of variables.
func (m *Manager) NumVars() int { return m.nvars }

// Ordering returns the current variable ordering, bottom-up.
func (m *Manager) Ordering() truthtable.Ordering {
	return truthtable.FromRootFirst(append([]int{}, m.varAtLevel...))
}

// Swaps returns the number of adjacent-level swaps performed so far.
func (m *Manager) Swaps() uint64 { return m.swaps }

func (m *Manager) level(f Node) int32 { return m.nodes[f].level }

// isTerminal reports whether f is a terminal.
func (m *Manager) isTerminal(f Node) bool { return f <= True }

// Ref declares an external reference to f (call once per retained root).
func (m *Manager) Ref(f Node) Node {
	m.nodes[f].ref++
	return f
}

// Deref releases an external reference taken with Ref. When the last
// reference disappears the node (and any children that become
// unreferenced) is recycled.
func (m *Manager) Deref(f Node) {
	m.decRef(f)
}

func (m *Manager) incRef(f Node) { m.nodes[f].ref++ }

func (m *Manager) decRef(f Node) {
	d := &m.nodes[f]
	if d.ref <= 0 {
		panic(fmt.Sprintf("dynbdd: reference underflow on node %d", f))
	}
	d.ref--
	if d.ref == 0 {
		if m.isTerminal(f) {
			panic("dynbdd: terminal reference dropped to zero")
		}
		// Delete only an entry that still maps to this node: during a
		// level swap a dying node's level may transiently index a table
		// whose slot has been reused by a new node with the same child
		// pair.
		if key := (pairKey{d.lo, d.hi}); m.unique[d.level][key] == f {
			delete(m.unique[d.level], key)
		}
		lo, hi := d.lo, d.hi
		d.level = -1
		m.free = append(m.free, f)
		m.decRef(lo)
		m.decRef(hi)
	}
}

// alloc returns a fresh or recycled node slot.
func (m *Manager) alloc(level int32, lo, hi Node) Node {
	var n Node
	if len(m.free) > 0 && !m.inSwap {
		n = m.free[len(m.free)-1]
		m.free = m.free[:len(m.free)-1]
		m.nodes[n] = nodeData{level: level, lo: lo, hi: hi}
	} else {
		n = Node(len(m.nodes))
		m.nodes = append(m.nodes, nodeData{level: level, lo: lo, hi: hi})
	}
	return n
}

// mk returns the canonical node (level, lo, hi) with the OBDD reduction
// rule, creating it (with one parent reference on each child) if needed.
// The returned node carries NO new reference for the caller; callers that
// retain it must Ref it, and callers wiring it as a child must incRef it.
func (m *Manager) mk(level int32, lo, hi Node) Node {
	if lo == hi {
		return lo
	}
	key := pairKey{lo, hi}
	if n, ok := m.unique[level][key]; ok {
		return n
	}
	n := m.alloc(level, lo, hi)
	m.incRef(lo)
	m.incRef(hi)
	m.unique[level][key] = n
	return n
}

// Var returns the function x_v, referenced for the caller.
func (m *Manager) Var(v int) Node {
	if v < 0 || v >= m.nvars {
		panic("dynbdd: Var index out of range")
	}
	return m.Ref(m.mk(int32(m.levelOfVar[v]), False, True))
}

// FromTruthTable builds the reduced OBDD of tt under the current ordering
// and returns a referenced root.
func (m *Manager) FromTruthTable(tt *truthtable.Table) Node {
	if tt.NumVars() != m.nvars {
		panic("dynbdd: truth table variable count mismatch")
	}
	n := m.nvars
	cur := make([]Node, tt.Size())
	for idx := uint64(0); idx < tt.Size(); idx++ {
		var ttIdx uint64
		for j := 0; j < n; j++ {
			if idx>>uint(j)&1 == 1 {
				ttIdx |= 1 << uint(m.varAtLevel[n-1-j])
			}
		}
		if tt.Bit(ttIdx) {
			cur[idx] = True
		} else {
			cur[idx] = False
		}
	}
	for level := n - 1; level >= 0; level-- {
		next := make([]Node, len(cur)/2)
		for i := range next {
			next[i] = m.mk(int32(level), cur[2*i], cur[2*i+1])
		}
		cur = next
	}
	return m.Ref(cur[0])
}

// Eval evaluates f on an assignment (x[i] = value of variable i).
func (m *Manager) Eval(f Node, x []bool) bool {
	if len(x) != m.nvars {
		panic("dynbdd: Eval assignment length mismatch")
	}
	for !m.isTerminal(f) {
		d := m.nodes[f]
		if x[m.varAtLevel[d.level]] {
			f = d.hi
		} else {
			f = d.lo
		}
	}
	return f == True
}

// ToTruthTable materializes the function of f.
func (m *Manager) ToTruthTable(f Node) *truthtable.Table {
	tt := truthtable.New(m.nvars)
	x := make([]bool, m.nvars)
	for idx := uint64(0); idx < tt.Size(); idx++ {
		for i := 0; i < m.nvars; i++ {
			x[i] = idx>>uint(i)&1 == 1
		}
		if m.Eval(f, x) {
			tt.Set(idx, true)
		}
	}
	return tt
}

// TotalNodes returns the number of live nonterminal nodes in the manager
// (across all diagrams) — the quantity dynamic reordering minimizes.
func (m *Manager) TotalNodes() uint64 {
	var c uint64
	for _, tbl := range m.unique {
		c += uint64(len(tbl))
	}
	return c
}

// LevelWidths returns the number of live nodes per level, bottom-up
// (matching core.Profile's convention when a single root is live).
func (m *Manager) LevelWidths() []uint64 {
	w := make([]uint64, m.nvars)
	for lvl, tbl := range m.unique {
		w[m.nvars-1-lvl] = uint64(len(tbl))
	}
	return w
}

// CountNodes returns the number of nonterminal nodes reachable from f.
func (m *Manager) CountNodes(f Node) uint64 {
	seen := map[Node]bool{}
	var count uint64
	var rec func(Node)
	rec = func(g Node) {
		if m.isTerminal(g) || seen[g] {
			return
		}
		seen[g] = true
		count++
		rec(m.nodes[g].lo)
		rec(m.nodes[g].hi)
	}
	rec(f)
	return count
}

// CheckInvariants validates reference counts, unique-table consistency and
// level monotonicity; tests call it after mutation-heavy operations. It
// returns an error describing the first violation found.
func (m *Manager) CheckInvariants() error {
	// Recompute reference counts from edges.
	refs := make([]int32, len(m.nodes))
	for i, d := range m.nodes {
		if d.level < 0 || m.isTerminal(Node(i)) {
			continue
		}
		refs[d.lo]++
		refs[d.hi]++
	}
	for i, d := range m.nodes {
		n := Node(i)
		if d.level < 0 {
			continue // free slot
		}
		if m.isTerminal(n) {
			continue // terminals carry a permanent self-reference
		}
		ext := d.ref - refs[n]
		if ext < 0 {
			return fmt.Errorf("node %d: ref %d below edge count %d", n, d.ref, refs[n])
		}
		if got, ok := m.unique[d.level][pairKey{d.lo, d.hi}]; !ok || got != n {
			return fmt.Errorf("node %d: missing or mismatched unique-table entry", n)
		}
		if m.nodes[d.lo].level <= d.level || m.nodes[d.hi].level <= d.level {
			return fmt.Errorf("node %d: child level not below", n)
		}
		if d.lo == d.hi {
			return fmt.Errorf("node %d: redundant (lo == hi)", n)
		}
	}
	for lvl, tbl := range m.unique {
		for key, n := range tbl {
			d := m.nodes[n]
			if d.level != int32(lvl) || d.lo != key.lo || d.hi != key.hi {
				return fmt.Errorf("unique[%d]: stale entry for node %d", lvl, n)
			}
		}
	}
	return nil
}
