package dynbdd

import (
	"math/rand"
	"testing"

	"obddopt/internal/funcs"
	"obddopt/internal/truthtable"
)

// BenchmarkSwapMid measures one adjacent-level swap in the middle of a
// 12-variable random diagram (the reordering primitive).
func BenchmarkSwapMid(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := New(12, nil)
	m.FromTruthTable(truthtable.Random(12, rng))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.SwapLevels(5)
	}
}

// BenchmarkSiftAchilles12 measures full in-place sifting of the 6-pair
// Achilles-heel diagram from its pessimal ordering.
func BenchmarkSiftAchilles12(b *testing.B) {
	f := funcs.AchillesHeel(6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := New(12, funcs.BlockedOrdering(6))
		m.FromTruthTable(f)
		b.StartTimer()
		m.Sift(0)
	}
}

// BenchmarkExactReorder10 measures in-place exact reordering (DP +
// SetOrder) of a 10-variable random diagram.
func BenchmarkExactReorder10(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	f := truthtable.Random(10, rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := New(10, nil)
		root := m.FromTruthTable(f)
		b.StartTimer()
		m.ExactReorder(root)
	}
}
