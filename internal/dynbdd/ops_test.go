package dynbdd

import (
	"math/rand"
	"testing"

	"obddopt/internal/truthtable"
)

func TestITEAgainstTruthTables(t *testing.T) {
	rng := rand.New(rand.NewSource(141))
	for trial := 0; trial < 15; trial++ {
		n := 2 + trial%4
		ft := truthtable.Random(n, rng)
		gt := truthtable.Random(n, rng)
		m := New(n, truthtable.RandomOrdering(n, rng))
		f := m.FromTruthTable(ft)
		g := m.FromTruthTable(gt)

		and := m.And(f, g)
		or := m.Or(f, g)
		xor := m.Xor(f, g)
		not := m.Not(f)
		checks := []struct {
			name string
			node Node
			want *truthtable.Table
		}{
			{"and", and, ft.And(gt)},
			{"or", or, ft.Or(gt)},
			{"xor", xor, ft.Xor(gt)},
			{"not", not, ft.Not()},
		}
		for _, c := range checks {
			if !m.ToTruthTable(c.node).Equal(c.want) {
				t.Fatalf("n=%d %s wrong", n, c.name)
			}
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("invariants after ops: %v", err)
		}
	}
}

func TestOpsSurviveReordering(t *testing.T) {
	// Build f∧g, reorder, verify the result still denotes the AND.
	rng := rand.New(rand.NewSource(142))
	n := 5
	ft := truthtable.Random(n, rng)
	gt := truthtable.Random(n, rng)
	m := New(n, nil)
	f := m.FromTruthTable(ft)
	g := m.FromTruthTable(gt)
	and := m.And(f, g)
	m.Sift(0)
	if !m.ToTruthTable(and).Equal(ft.And(gt)) {
		t.Fatalf("AND corrupted by sifting")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	// Recompute after reordering: must give the same node as transferring
	// semantics (pointer equality through the unique table).
	and2 := m.And(f, g)
	if and2 != and {
		t.Fatalf("recomputed AND is a different node: canonicity broken")
	}
	m.Deref(and2)
}

func TestTautologyAndContradiction(t *testing.T) {
	m := New(3, nil)
	x := m.Var(0)
	nx := m.Not(x)
	if m.Or(x, nx) != True {
		t.Errorf("x ∨ ¬x != ⊤")
	}
	if m.And(x, nx) != False {
		t.Errorf("x ∧ ¬x != ⊥")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

func TestDerefAfterOpsReclaims(t *testing.T) {
	m := New(4, nil)
	a, b := m.Var(0), m.Var(1)
	c := m.And(a, b)
	d := m.Or(c, m.Var(2)) // intermediate Var(2) root stays referenced
	live := m.TotalNodes()
	if live == 0 {
		t.Fatalf("no live nodes")
	}
	m.Deref(d)
	m.Deref(c)
	m.Deref(a)
	m.Deref(b)
	// Var(2)'s reference is still held (returned by Var inside the Or
	// expression and never captured) — collect explicitly after dropping
	// everything reachable.
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("invariants after derefs: %v", err)
	}
	if m.TotalNodes() > live {
		t.Errorf("deref grew the manager")
	}
}

func TestCollectGarbage(t *testing.T) {
	m := New(4, nil)
	a, b := m.Var(0), m.Var(1)
	c := m.And(a, b)
	m.Deref(a)
	m.Deref(b)
	m.Deref(c)
	if got := m.TotalNodes(); got != 0 {
		t.Fatalf("nodes survive full deref: %d", got)
	}
	if reclaimed := m.CollectGarbage(); reclaimed != 0 {
		t.Errorf("garbage found after clean derefs: %d", reclaimed)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

func TestOpsThenExactReorderEndToEnd(t *testing.T) {
	// Build the Fig. 1 function structurally with ops under a bad
	// ordering, then exact-reorder: size must reach 2k.
	pairs := 4
	n := 2 * pairs
	var blockedRF []int
	for i := 0; i < n; i += 2 {
		blockedRF = append(blockedRF, i)
	}
	for i := 1; i < n; i += 2 {
		blockedRF = append(blockedRF, i)
	}
	m := New(n, truthtable.FromRootFirst(blockedRF))
	f := m.Ref(False)
	for i := 0; i < n; i += 2 {
		a, b := m.Var(i), m.Var(i+1)
		ab := m.And(a, b)
		nf := m.Or(f, ab)
		m.Deref(f)
		m.Deref(a)
		m.Deref(b)
		m.Deref(ab)
		f = nf
	}
	if m.CountNodes(f) != uint64(1<<uint(pairs+1))-2 {
		t.Fatalf("blocked build size %d", m.CountNodes(f))
	}
	_, opt := m.ExactReorder(f)
	if opt.MinCost != uint64(2*pairs) {
		t.Fatalf("exact reorder found %d, want %d", opt.MinCost, 2*pairs)
	}
	if m.CountNodes(f) != uint64(2*pairs) {
		t.Fatalf("diagram not shrunk in place")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}
