package dynbdd

// Boolean operations for the reorderable manager. Because reordering
// mutates node contents in place, operation results cannot be memoized
// across reorderings; each call uses a local cache valid for the current
// ordering. Results are returned referenced for the caller (Deref when
// done), matching the manager's ownership discipline.

type iteKey struct{ f, g, h Node }

// ITE computes if-then-else(f, g, h) = f·g + f̄·h under the current
// ordering and returns a referenced result.
func (m *Manager) ITE(f, g, h Node) Node {
	cache := map[iteKey]Node{}
	var rec func(f, g, h Node) Node
	rec = func(f, g, h Node) Node {
		switch {
		case f == True:
			return g
		case f == False:
			return h
		case g == h:
			return g
		case g == True && h == False:
			return f
		}
		key := iteKey{f, g, h}
		if r, ok := cache[key]; ok {
			return r
		}
		top := m.level(f)
		if l := m.level(g); l < top {
			top = l
		}
		if l := m.level(h); l < top {
			top = l
		}
		f0, f1 := m.cofactorsAtLevel(f, top)
		g0, g1 := m.cofactorsAtLevel(g, top)
		h0, h1 := m.cofactorsAtLevel(h, top)
		lo := rec(f0, g0, h0)
		hi := rec(f1, g1, h1)
		r := m.mk(top, lo, hi)
		cache[key] = r
		return r
	}
	// Protect intermediate results from collection: nodes created by mk
	// carry references from their parents only once wired; the recursion
	// wires children before parents, and nothing is dereferenced during
	// the computation, so a single final Ref suffices.
	return m.Ref(rec(f, g, h))
}

// And returns f ∧ g, referenced.
func (m *Manager) And(f, g Node) Node { return m.ITE(f, g, False) }

// Or returns f ∨ g, referenced.
func (m *Manager) Or(f, g Node) Node { return m.ITE(f, True, g) }

// Not returns ¬f, referenced.
func (m *Manager) Not(f Node) Node { return m.ITE(f, False, True) }

// Xor returns f ⊕ g, referenced.
func (m *Manager) Xor(f, g Node) Node {
	ng := m.Not(g)
	r := m.ITE(f, ng, g)
	m.Deref(ng)
	return r
}

// CollectGarbage removes all nodes not reachable from externally
// referenced roots. Unreferenced intermediate nodes created by mk (which
// allocates children references but gives the node itself none until a
// parent or external Ref claims it) are swept here. It returns the number
// of nodes reclaimed.
func (m *Manager) CollectGarbage() int {
	reclaimed := 0
	// Repeatedly sweep zero-reference nonterminals: dropping one may
	// orphan its children.
	for {
		freed := 0
		for i := range m.nodes {
			n := Node(i)
			d := &m.nodes[i]
			if d.level < 0 || m.isTerminal(n) || d.ref != 0 {
				continue
			}
			if key := (pairKey{d.lo, d.hi}); m.unique[d.level][key] == n {
				delete(m.unique[d.level], key)
			}
			lo, hi := d.lo, d.hi
			d.level = -1
			m.free = append(m.free, n)
			// Children lose one parent edge each.
			m.nodes[lo].ref--
			m.nodes[hi].ref--
			freed++
		}
		if freed == 0 {
			return reclaimed
		}
		reclaimed += freed
	}
}
