package dynbdd

import (
	"obddopt/internal/core"
	"obddopt/internal/truthtable"
)

// SetOrder reorders the manager in place to the given bottom-up target
// ordering by adjacent swaps (selection sort over levels, O(n²) swaps,
// each linear in the touched levels). All live roots keep their identity
// and function.
func (m *Manager) SetOrder(target truthtable.Ordering) {
	if len(target) != m.nvars || !target.Valid() {
		panic("dynbdd: SetOrder target is not a permutation of the variables")
	}
	rootFirst := target.RootFirst()
	for level, v := range rootFirst {
		m.MoveVarToLevel(v, level)
	}
}

// SiftResult reports an in-place reordering outcome.
type SiftResult struct {
	// Initial and Final are the total live node counts before and after.
	Initial, Final uint64
	// Swaps is the number of adjacent-level swaps performed.
	Swaps uint64
	// Passes counts sifting sweeps until convergence.
	Passes int
}

// Sift runs Rudell's sifting in place on the whole manager: each variable
// in turn (largest level first) is moved through every level by adjacent
// swaps and parked where the total live node count is smallest. Sweeps
// repeat until no improvement (or maxPasses > 0 sweeps).
func (m *Manager) Sift(maxPasses int) SiftResult {
	res := SiftResult{Initial: m.TotalNodes()}
	startSwaps := m.swaps
	best := res.Initial
	for {
		res.Passes++
		improved := false
		for _, v := range m.siftSchedule() {
			if m.siftVar(v, &best) {
				improved = true
			}
		}
		if !improved || (maxPasses > 0 && res.Passes >= maxPasses) {
			break
		}
	}
	res.Final = m.TotalNodes()
	res.Swaps = m.swaps - startSwaps
	return res
}

// siftSchedule lists the variables by decreasing width of their level.
func (m *Manager) siftSchedule() []int {
	vars := make([]int, m.nvars)
	for i := range vars {
		vars[i] = i
	}
	width := func(v int) int { return len(m.unique[m.levelOfVar[v]]) }
	for i := 1; i < len(vars); i++ {
		for j := i; j > 0 && width(vars[j]) > width(vars[j-1]); j-- {
			vars[j], vars[j-1] = vars[j-1], vars[j]
		}
	}
	return vars
}

// siftVar moves v through all levels and parks it at the best one. best is
// updated with the new total when improved; returns whether it improved.
func (m *Manager) siftVar(v int, best *uint64) bool {
	start := m.levelOfVar[v]
	bestLevel, bestTotal := start, *best
	// Walk to the top, then all the way down, tracking the best seat.
	for lvl := start; lvl > 0; lvl-- {
		m.SwapLevels(lvl - 1)
		if t := m.TotalNodes(); t < bestTotal {
			bestLevel, bestTotal = lvl-1, t
		}
	}
	for lvl := 0; lvl < m.nvars-1; lvl++ {
		m.SwapLevels(lvl)
		if t := m.TotalNodes(); t < bestTotal {
			bestLevel, bestTotal = lvl+1, t
		}
	}
	// v now sits at the bottom; return to the best level found.
	m.MoveVarToLevel(v, bestLevel)
	improved := bestTotal < *best
	*best = bestTotal
	return improved
}

// WindowPermute runs in-place window permutation with window width w (2–4):
// for each block of w adjacent levels, all w! arrangements are tried via
// adjacent swaps and the smallest is kept; sweeps repeat to a fixpoint.
func (m *Manager) WindowPermute(w int) SiftResult {
	if w < 2 || w > 4 {
		panic("dynbdd: window width must be 2, 3 or 4")
	}
	if w > m.nvars {
		w = m.nvars
	}
	res := SiftResult{Initial: m.TotalNodes()}
	startSwaps := m.swaps
	if w < 2 {
		res.Final = res.Initial
		return res
	}
	for {
		res.Passes++
		improved := false
		for start := 0; start+w <= m.nvars; start++ {
			if m.permuteWindow(start, w) {
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	res.Final = m.TotalNodes()
	res.Swaps = m.swaps - startSwaps
	return res
}

// permuteWindow tries all arrangements of the w variables at levels
// start..start+w−1 and leaves the best in place. Returns whether the
// total shrank.
func (m *Manager) permuteWindow(start, w int) bool {
	initial := m.TotalNodes()
	bestTotal := initial
	var bestOrder []int
	// Enumerate permutations by recursive swaps of the window variables
	// (on variables, using MoveVarToLevel to realize each arrangement —
	// simple and obviously correct; the O(w²) swap overhead per
	// arrangement is irrelevant for w ≤ 4).
	vars := make([]int, w)
	for i := 0; i < w; i++ {
		vars[i] = m.varAtLevel[start+i]
	}
	perm := append([]int{}, vars...)
	var rec func(k int)
	rec = func(k int) {
		if k == w {
			for i, v := range perm {
				m.MoveVarToLevel(v, start+i)
			}
			if t := m.TotalNodes(); t < bestTotal {
				bestTotal = t
				bestOrder = append([]int{}, perm...)
			}
			return
		}
		for i := k; i < w; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	target := vars
	if bestOrder != nil {
		target = bestOrder
	}
	for i, v := range target {
		m.MoveVarToLevel(v, start+i)
	}
	return bestTotal < initial
}

// ExactReorder reorders the manager in place to a provably optimal
// ordering for the function rooted at root, found by the Friedman–Supowit
// dynamic program on the root's truth table (O*(3^n); practical for the
// variable counts where exact optimization is feasible at all). It
// returns the exact result alongside the swap statistics.
func (m *Manager) ExactReorder(root Node) (SiftResult, *core.Result) {
	res := SiftResult{Initial: m.TotalNodes()}
	startSwaps := m.swaps
	tt := m.ToTruthTable(root)
	opt := core.OptimalOrdering(tt, nil)
	m.SetOrder(opt.Ordering)
	res.Final = m.TotalNodes()
	res.Swaps = m.swaps - startSwaps
	res.Passes = 1
	return res, opt
}
