// Package cliutil holds the flag plumbing shared by the command-line
// tools: the -solver selection resolved through core's named-solver
// registry, the -deadline / budget flags feeding the cancellable Solve
// API, and the -rule parser. Keeping it in one place guarantees optobdd
// and bddbench accept the same names with the same semantics.
package cliutil

import (
	"context"
	"flag"
	"fmt"
	"io"
	"strings"
	"time"

	"obddopt/internal/core"
	_ "obddopt/internal/heuristics" // installs the portfolio's default seeder
	"obddopt/internal/obs"
	"obddopt/internal/server"
)

// SolverFlags is the shared flag block for choosing and bounding a
// solver run. Register it on a FlagSet (or flag.CommandLine), then call
// Resolve / Context / Budget after parsing.
type SolverFlags struct {
	Solver   string
	Deadline time.Duration
	MaxCells uint64
	MaxNodes uint64
	// The parallel schedule (see core.SolveOptions): worker count, shard
	// granularity of the work-stealing DP, and whether stealing is off.
	Workers   int
	ShardBits int
	Pinned    bool
}

// Register declares the shared flags on fs. defaultSolver is the value
// used when -solver is not given (empty keeps the flag optional so a
// legacy alias like optobdd's -algo can take precedence).
func (f *SolverFlags) Register(fs *flag.FlagSet, defaultSolver string) {
	fs.StringVar(&f.Solver, "solver", defaultSolver,
		"solver: "+strings.Join(core.SolverNames(), " | "))
	fs.DurationVar(&f.Deadline, "deadline", 0,
		"wall-clock limit; on expiry the run stops with the best incumbent (0 = none)")
	fs.Uint64Var(&f.MaxCells, "max-cells", 0,
		"budget: max live DP table cells (0 = unlimited)")
	fs.Uint64Var(&f.MaxNodes, "max-nodes", 0,
		"budget: max DP transitions / search-node expansions (0 = unlimited)")
	fs.IntVar(&f.Workers, "workers", 0,
		"parallel schedule: worker goroutines (0 = GOMAXPROCS)")
	fs.IntVar(&f.ShardBits, "shard-bits", 0,
		"parallel schedule: 2^bits lattice ranks per work-stealing shard (0 = auto)")
	fs.BoolVar(&f.Pinned, "pinned", false,
		"parallel schedule: disable work stealing (workers keep their own claims)")
}

// Schedule copies the -workers / -shard-bits / -pinned flags into opts.
func (f *SolverFlags) Schedule(opts *core.SolveOptions) {
	opts.Workers = f.Workers
	opts.ShardBits = f.ShardBits
	opts.Pinned = f.Pinned
}

// Resolve looks the chosen solver up in the registry, returning the
// solver, its normalized name, and a listing error on unknown names.
func (f *SolverFlags) Resolve() (core.Solver, string, error) {
	name := strings.ToLower(f.Solver)
	s, ok := core.LookupSolver(name)
	if !ok {
		return nil, name, fmt.Errorf("unknown solver %q (have %s)",
			f.Solver, strings.Join(core.SolverNames(), ", "))
	}
	return s, name, nil
}

// Context returns the run context implied by -deadline; the caller must
// invoke the cancel function when the run ends.
func (f *SolverFlags) Context() (context.Context, context.CancelFunc) {
	if f.Deadline <= 0 {
		return context.Background(), func() {}
	}
	return context.WithTimeout(context.Background(), f.Deadline)
}

// Budget returns the resource budget implied by the -max-* flags.
func (f *SolverFlags) Budget() core.Budget {
	return core.Budget{MaxCells: f.MaxCells, MaxNodes: f.MaxNodes}
}

// ServeFlags is the flag block sizing the obddd network service's
// admission control and result cache. Register it on a FlagSet, then
// pass Config() to server.New after parsing.
type ServeFlags struct {
	Addr            string
	Workers         int
	QueueDepth      int
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	MaxCells        uint64
	MaxNodes        uint64
	MaxVars         int
	CacheMB         int64
	RetryAfter      time.Duration
	DrainTimeout    time.Duration
	AccessLog       bool
}

// Register declares the serving flags on fs. Zero values defer to the
// server's production defaults (workers = GOMAXPROCS, queue = 4×workers,
// 30s deadline cap, 64 MiB cache).
func (f *ServeFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.Addr, "addr", ":8344", "listen address")
	fs.IntVar(&f.Workers, "workers", 0,
		"max concurrent solver runs (0 = GOMAXPROCS)")
	fs.IntVar(&f.QueueDepth, "queue", 0,
		"max requests waiting for a worker before 429 (0 = 4x workers)")
	fs.DurationVar(&f.DefaultDeadline, "default-deadline", 0,
		"deadline applied to requests that set none (0 = the -max-deadline cap)")
	fs.DurationVar(&f.MaxDeadline, "max-deadline", 0,
		"cap on per-request deadlines (0 = 30s, negative = uncapped)")
	fs.Uint64Var(&f.MaxCells, "max-cells", 0,
		"cap on per-request live DP cell budgets (0 = uncapped)")
	fs.Uint64Var(&f.MaxNodes, "max-nodes", 0,
		"cap on per-request node-expansion budgets (0 = uncapped)")
	fs.IntVar(&f.MaxVars, "max-vars", 0,
		"largest accepted variable count (0 = the engine limit)")
	fs.Int64Var(&f.CacheMB, "cache-mb", 0,
		"result cache size in MiB (0 = 64, negative = disabled)")
	fs.DurationVar(&f.RetryAfter, "retry-after", 0,
		"Retry-After hint on 429 responses (0 = 1s)")
	fs.DurationVar(&f.DrainTimeout, "drain-timeout", 10*time.Second,
		"max wait for in-flight solves on shutdown")
	fs.BoolVar(&f.AccessLog, "access-log", false,
		"write one JSON access-log line per request to stderr (request ID, route, status, queue wait, solve time, cache outcome)")
}

// Config resolves the flags to a server configuration; tr (optional)
// receives every request's solver events, and accessLog is the sink
// -access-log enables (typically os.Stderr; ignored unless the flag is
// set).
func (f *ServeFlags) Config(tr obs.Tracer, accessLog io.Writer) server.Config {
	cfg := server.Config{
		Workers:         f.Workers,
		QueueDepth:      f.QueueDepth,
		DefaultDeadline: f.DefaultDeadline,
		MaxDeadline:     f.MaxDeadline,
		MaxBudget:       core.Budget{MaxCells: f.MaxCells, MaxNodes: f.MaxNodes},
		MaxVars:         f.MaxVars,
		CacheBytes:      f.CacheMB << 20,
		RetryAfter:      f.RetryAfter,
		Trace:           tr,
	}
	if f.AccessLog {
		cfg.AccessLog = accessLog
	}
	return cfg
}

// ParseRule maps a -rule flag value to the diagram rule; unknown names
// surface core's typed *UnknownRuleError.
func ParseRule(name string) (core.Rule, error) {
	return core.ParseRule(name)
}
